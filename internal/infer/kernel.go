package infer

import (
	"fmt"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/sparse"
)

// KernelKind selects which fused kernel family an engine's layer steps run.
type KernelKind int

const (
	// KernelCSC is the generic fused CSC gather / CSR scatter kernel pair —
	// correct for any sparsity pattern, and the bit-identity oracle the
	// structure-aware path is validated against. The zero value, so engines
	// built from explicit matrices (New, FromTopology) default to it.
	KernelCSC KernelKind = iota

	// KernelRadix is the structure-aware butterfly kernel: each layer runs a
	// compiled mixed-radix stride plan with arithmetic addressing and no
	// index arrays in the hot loop. Only available when every layer's pattern
	// has been proven radix-structured (CompileRadixPlans).
	KernelRadix

	// KernelAuto resolves to KernelRadix when the engine carries verified
	// stride plans for every layer and KernelCSC otherwise. It is the default
	// for config-built engines.
	KernelAuto
)

// String returns the kernel's wire name, as accepted by ParseKernel.
func (k KernelKind) String() string {
	switch k {
	case KernelCSC:
		return "csc"
	case KernelRadix:
		return "radix"
	case KernelAuto:
		return "auto"
	}
	return fmt.Sprintf("KernelKind(%d)", int(k))
}

// ParseKernel parses a kernel name from config or flags. The empty string
// means KernelAuto, so omitting the field keeps today's behavior.
func ParseKernel(s string) (KernelKind, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "csc":
		return KernelCSC, nil
	case "radix":
		return KernelRadix, nil
	}
	return KernelAuto, fmt.Errorf("infer: unknown kernel %q (want csc, radix or auto)", s)
}

// FromConfigKernel is FromConfig with explicit kernel selection. KernelAuto
// compiles stride plans and falls back to CSC only if the built layers do
// not verify as radix-structured (which config-built networks always do);
// KernelRadix makes that failure an error; KernelCSC skips plan compilation
// entirely.
func FromConfigKernel(cfg core.Config, kind KernelKind) (*Engine, error) {
	e, err := fromConfigBase(cfg)
	if err != nil {
		return nil, err
	}
	switch kind {
	case KernelCSC:
		return e, nil
	case KernelRadix, KernelAuto:
		if err := e.CompileRadixPlans(cfg); err != nil {
			if kind == KernelRadix {
				return nil, err
			}
			return e, nil // auto: arbitrary pattern, CSC fallback
		}
		e.kind = KernelRadix
		return e, nil
	}
	return nil, fmt.Errorf("infer: invalid kernel kind %v", kind)
}

// CompileRadixPlans compiles and verifies a stride plan for every layer of
// the engine from the mixed-radix config that generated it, attaching a
// structure-aware kernel per layer. The plans share value storage with the
// engine's matrices and CSC kernels, so RefreshWeights/PerturbWeights and
// Clone sharing work unchanged. On any layer failing structural
// verification (the config does not describe these matrices) the engine is
// left unmodified on the CSC kernel and the error reports the layer.
func (e *Engine) CompileRadixPlans(cfg core.Config) error {
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("infer: radix plans: %w", err)
	}
	if got := cfg.TotalRadices(); got != len(e.layers) {
		return fmt.Errorf("infer: config has %d radix layers, engine has %d", got, len(e.layers))
	}
	np := cfg.NPrime()
	shape := cfg.ShapeOrOnes()
	radixKerns := make([]*sparse.RadixKernel, len(e.layers))
	l := 0
	for _, sys := range cfg.Systems {
		for i := 0; i < sys.Len(); i++ {
			plan, err := sparse.CompileStridePlan(
				e.layers[l].Pattern(), np, sys.PlaceValue(i), sys.Radix(i), shape[l], shape[l+1])
			if err != nil {
				return fmt.Errorf("infer: layer %d: %w", l, err)
			}
			rk, err := sparse.NewRadixKernel(e.layers[l], e.kernels[l], plan)
			if err != nil {
				return fmt.Errorf("infer: layer %d: %w", l, err)
			}
			radixKerns[l] = rk
			l++
		}
	}
	// Stockham chaining: if every layer is a pure EMR circulant and each
	// layer's output packing (pv·radix, identity once it reaches N′) is the
	// next layer's input packing (its pv), the whole stack can run in the
	// packed Stockham layout — all hot-loop streams unit-stride, engine
	// inputs and outputs still natural. Mixed-radix systems chain by
	// construction (place values multiply to the product), so this holds for
	// every standard EMR config; Kronecker lifts and last-system-divides
	// configs fall back to the natural-order radix kernels, which are still
	// index-free and bit-identical.
	stockham := true
	pack := 1
	for _, rk := range radixKerns {
		p := rk.Plan()
		dp, dn := p.Shape()
		if dp != 1 || dn != 1 || !p.CanStockham() || p.PlaceValue() != pack {
			stockham = false
			break
		}
		pack = p.PlaceValue() * p.Radix()
		if pack == p.NPrime() {
			pack = 1
		}
	}
	if stockham && pack == 1 {
		for _, rk := range radixKerns {
			if err := rk.EnableStockham(); err != nil {
				return fmt.Errorf("infer: %w", err)
			}
		}
		e.stockham = true
	}
	e.radix = radixKerns
	return nil
}

// Kernel reports which kernel family Infer currently runs.
func (e *Engine) Kernel() KernelKind { return e.kind }

// HasRadixPlans reports whether every layer carries a verified stride plan,
// i.e. whether SetKernel(KernelRadix) would succeed.
func (e *Engine) HasRadixPlans() bool { return e.radix != nil }

// SetKernel switches the kernel family used by subsequent Infer calls.
// KernelAuto picks radix when plans are attached, CSC otherwise;
// KernelRadix errors when the engine has no compiled plans (build with
// FromConfigKernel or call CompileRadixPlans first). Returns ErrBusy rather
// than switching under an in-flight Infer.
func (e *Engine) SetKernel(kind KernelKind) error {
	if !e.inUse.CompareAndSwap(false, true) {
		return ErrBusy
	}
	defer e.inUse.Store(false)
	switch kind {
	case KernelAuto:
		if e.radix != nil {
			e.kind = KernelRadix
		} else {
			e.kind = KernelCSC
		}
	case KernelCSC:
		e.kind = KernelCSC
	case KernelRadix:
		if e.radix == nil {
			return fmt.Errorf("infer: engine has no compiled stride plans; radix kernel unavailable")
		}
		e.kind = KernelRadix
	default:
		return fmt.Errorf("infer: invalid kernel kind %v", kind)
	}
	return nil
}
