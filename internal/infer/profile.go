package infer

import (
	"sync/atomic"
	"time"
)

// Profiler accumulates per-layer kernel timings behind a sampling
// gate: every Nth Infer call is timed layer-by-layer, the rest pay
// one atomic add. Disabled engines (no profiler attached) pay a
// single atomic pointer load per Infer — nothing per layer.
//
// A profiler is shared across an engine and its clones (the serving
// layer's warm pools), so the per-layer tallies aggregate the whole
// pool's sampled batches. All methods are safe for concurrent use.
type Profiler struct {
	every  uint64
	tick   atomic.Uint64
	layers []layerProf
}

type layerProf struct {
	batches atomic.Int64
	rows    atomic.Int64
	ns      atomic.Int64
	edges   atomic.Int64
}

// NewProfiler builds a profiler for an engine with the given layer
// count, sampling one in every `every` batches (every <= 1 profiles
// every batch).
func NewProfiler(layers, every int) *Profiler {
	if every < 1 {
		every = 1
	}
	return &Profiler{every: uint64(every), layers: make([]layerProf, layers)}
}

// Every reports the sampling stride.
func (p *Profiler) Every() int { return int(p.every) }

// sample reports whether this Infer call should be timed.
func (p *Profiler) sample() bool {
	return p.tick.Add(1)%p.every == 0
}

// record folds one sampled layer execution into the tallies: rows
// active entering the layer, the layer's stored weight count (so
// edges = rows×nnz matches the repo's Gedges/s convention), and the
// kernel wall time.
func (p *Profiler) record(layer, rows int, nnz int, d time.Duration) {
	if layer < 0 || layer >= len(p.layers) {
		return
	}
	lp := &p.layers[layer]
	lp.batches.Add(1)
	lp.rows.Add(int64(rows))
	lp.ns.Add(d.Nanoseconds())
	lp.edges.Add(int64(rows) * int64(nnz))
}

// LayerProfile is one layer's accumulated sampled-kernel tallies.
type LayerProfile struct {
	Layer        int     `json:"layer"`
	NNZ          int     `json:"nnz"`
	Batches      int64   `json:"batches"`
	Rows         int64   `json:"rows"`
	Ns           int64   `json:"ns"`
	Edges        int64   `json:"edges"`
	GedgesPerSec float64 `json:"gedges_per_sec"`
}

// ProfileSnapshot is a point-in-time copy of a Profiler's tallies with
// derived throughput: per-layer and whole-stack Gedges/s over the
// sampled batches (edges/ns ≡ Gedges/s).
type ProfileSnapshot struct {
	Every        int            `json:"every"`
	Batches      int64          `json:"batches"`
	TotalNs      int64          `json:"total_ns"`
	TotalEdges   int64          `json:"total_edges"`
	GedgesPerSec float64        `json:"gedges_per_sec"`
	Layers       []LayerProfile `json:"layers"`
}

// snapshot copies the tallies; nnz supplies each layer's weight count
// for the report (the profiler itself only stores edge products).
func (p *Profiler) snapshot(nnz []int) ProfileSnapshot {
	s := ProfileSnapshot{Every: int(p.every), Layers: make([]LayerProfile, len(p.layers))}
	for i := range p.layers {
		lp := &p.layers[i]
		l := LayerProfile{
			Layer:   i,
			Batches: lp.batches.Load(),
			Rows:    lp.rows.Load(),
			Ns:      lp.ns.Load(),
			Edges:   lp.edges.Load(),
		}
		if i < len(nnz) {
			l.NNZ = nnz[i]
		}
		if l.Ns > 0 {
			l.GedgesPerSec = float64(l.Edges) / float64(l.Ns)
		}
		if l.Batches > s.Batches {
			s.Batches = l.Batches
		}
		s.TotalNs += l.Ns
		s.TotalEdges += l.Edges
		s.Layers[i] = l
	}
	if s.TotalNs > 0 {
		s.GedgesPerSec = float64(s.TotalEdges) / float64(s.TotalNs)
	}
	return s
}

// EnableProfiling attaches a fresh profiler sampling every Nth batch
// (every <= 1: every batch; every < 0 is normalized to 1). The
// profiler is shared with clones made afterwards. Returns the
// profiler so callers can share it across pre-existing clones via
// SetProfiler.
func (e *Engine) EnableProfiling(every int) *Profiler {
	p := NewProfiler(len(e.layers), every)
	e.prof.Store(p)
	return p
}

// DisableProfiling detaches the profiler; subsequent Infer calls pay
// only the nil pointer load.
func (e *Engine) DisableProfiling() { e.prof.Store(nil) }

// SetProfiler attaches an existing profiler (from another engine of
// the same layer stack) so a pool of clones aggregates into one set
// of tallies. A nil p disables profiling.
func (e *Engine) SetProfiler(p *Profiler) { e.prof.Store(p) }

// Profile snapshots the attached profiler's tallies; ok is false when
// profiling is disabled.
func (e *Engine) Profile() (ProfileSnapshot, bool) {
	p := e.prof.Load()
	if p == nil {
		return ProfileSnapshot{}, false
	}
	nnz := make([]int, len(e.layers))
	for i, l := range e.layers {
		nnz[i] = l.NNZ()
	}
	return p.snapshot(nnz), true
}
