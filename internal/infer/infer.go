// Package infer implements a Graph Challenge–style sparse deep neural
// network inference engine: repeated application of
//
//	Y ← min(cap, ReLU(Y·Wl + bl))
//
// over a stack of sparse weight matrices, batched over input rows and
// parallelized over row blocks. RadiX-Net's flagship downstream use is
// generating the synthetic networks for the MIT/IEEE/Amazon Sparse DNN
// Graph Challenge; this engine makes that workload executable here
// (experiment E10).
package infer

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/nn"
	"github.com/radix-net/radixnet/internal/parallel"
	"github.com/radix-net/radixnet/internal/sparse"
	"github.com/radix-net/radixnet/internal/topology"
)

// Engine holds the weight stack of a sparse feedforward network prepared
// for batched threshold-ReLU inference.
type Engine struct {
	layers []*sparse.Matrix
	bias   []float64 // one uniform bias per layer
	cap    float64   // activation ceiling; 0 disables clamping
}

// New builds an engine from explicit weight matrices and per-layer biases.
// cap ≤ 0 disables the activation ceiling.
func New(layers []*sparse.Matrix, bias []float64, cap float64) (*Engine, error) {
	if len(layers) == 0 {
		return nil, errors.New("infer: need at least one layer")
	}
	if len(bias) != len(layers) {
		return nil, fmt.Errorf("infer: %d biases for %d layers", len(bias), len(layers))
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].Cols() != layers[i].Rows() {
			return nil, fmt.Errorf("infer: layer %d is %dx%d but layer %d has %d rows",
				i-1, layers[i-1].Rows(), layers[i-1].Cols(), i, layers[i].Rows())
		}
	}
	if cap < 0 {
		cap = 0
	}
	return &Engine{layers: layers, bias: append([]float64(nil), bias...), cap: cap}, nil
}

// FromTopology assigns every edge of the FNNT the same weight and every
// layer the same bias — the Graph Challenge convention, where weights are
// 1/16 and biases tuned per width so activations neither die nor saturate.
func FromTopology(g *topology.FNNT, weight, bias, cap float64) (*Engine, error) {
	layers := make([]*sparse.Matrix, g.NumSubs())
	biases := make([]float64, g.NumSubs())
	for i := range layers {
		layers[i] = sparse.MatrixFromPattern(g.Sub(i), weight)
		biases[i] = bias
	}
	return New(layers, biases, cap)
}

// FromConfig generates the RadiX-Net of cfg and wraps it in an engine with
// Graph Challenge weighting: weight 1/16 scaled by fan-in relative to the
// challenge's 32, bias per the challenge convention, cap 32.
func FromConfig(cfg core.Config) (*Engine, error) {
	g, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	// Mean in-degree of the first layer sets the scale. Weight 4/fan-in with
	// a small negative bias keeps typical sparse inputs alive through
	// arbitrarily deep stacks: a neuron with ≥2 active in-edges clears the
	// bias, and growth saturates at the challenge's activation ceiling of 32
	// rather than exploding.
	inDeg := float64(g.Sub(0).NNZ()) / float64(g.Sub(0).Cols())
	weight := 4.0 / inDeg
	const bias = -0.10
	return FromTopology(g, weight, bias, 32)
}

// NumLayers returns the number of weight layers.
func (e *Engine) NumLayers() int { return len(e.layers) }

// TotalNNZ returns the total stored weight count across layers — the "edges
// traversed per input row" figure used for throughput reporting.
func (e *Engine) TotalNNZ() int {
	total := 0
	for _, l := range e.layers {
		total += l.NNZ()
	}
	return total
}

// Infer runs the batch through every layer with threshold-ReLU semantics
// and returns the final activations. Row blocks of the batch are processed
// in parallel inside each layer's sparse product.
func (e *Engine) Infer(y0 *sparse.Dense) (*sparse.Dense, error) {
	if y0.Cols() != e.layers[0].Rows() {
		return nil, fmt.Errorf("infer: batch width %d, first layer expects %d", y0.Cols(), e.layers[0].Rows())
	}
	y := y0
	for i, w := range e.layers {
		next, err := w.DenseMul(y)
		if err != nil {
			return nil, fmt.Errorf("infer: layer %d: %w", i, err)
		}
		b := e.bias[i]
		cap := e.cap
		data := next.Data()
		parallel.Blocks(len(data), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				v := data[j] + b
				if v < 0 {
					v = 0
				} else if cap > 0 && v > cap {
					v = cap
				}
				data[j] = v
			}
		})
		y = next
	}
	return y, nil
}

// InferCategories runs Infer and returns, per input row, whether the row
// ended with any positive activation (the Graph Challenge's category
// criterion) plus the index of its strongest neuron.
func (e *Engine) InferCategories(y0 *sparse.Dense) (active []bool, argmax []int, err error) {
	y, err := e.Infer(y0)
	if err != nil {
		return nil, nil, err
	}
	active = make([]bool, y.Rows())
	argmax = nn.Argmax(y)
	for r := 0; r < y.Rows(); r++ {
		row := y.RowSlice(r)
		for _, v := range row {
			if v > 0 {
				active[r] = true
				break
			}
		}
	}
	return active, argmax, nil
}

// ReferenceInfer is a deliberately simple single-threaded implementation of
// the same semantics, used to validate Infer in tests.
func (e *Engine) ReferenceInfer(y0 *sparse.Dense) (*sparse.Dense, error) {
	if y0.Cols() != e.layers[0].Rows() {
		return nil, fmt.Errorf("infer: batch width %d, first layer expects %d", y0.Cols(), e.layers[0].Rows())
	}
	y := y0.Clone()
	for i, w := range e.layers {
		next, err := sparse.NewDense(y.Rows(), w.Cols())
		if err != nil {
			return nil, err
		}
		for r := 0; r < y.Rows(); r++ {
			for k := 0; k < y.Cols(); k++ {
				xv := y.At(r, k)
				if xv == 0 {
					continue
				}
				w.RowEntries(k, func(c int, wv float64) {
					next.Set(r, c, next.At(r, c)+xv*wv)
				})
			}
			for c := 0; c < next.Cols(); c++ {
				v := next.At(r, c) + e.bias[i]
				if v < 0 {
					v = 0
				} else if e.cap > 0 && v > e.cap {
					v = e.cap
				}
				next.Set(r, c, v)
			}
		}
		y = next
	}
	return y, nil
}

// PerturbWeights adds uniform noise in ±scale to every stored weight,
// seeded; used by robustness tests and benchmarks to avoid the all-equal
// weight special case.
func (e *Engine) PerturbWeights(scale float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, l := range e.layers {
		vals := l.Values()
		for i := range vals {
			vals[i] += (rng.Float64()*2 - 1) * scale
		}
	}
}
