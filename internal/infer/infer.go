// Package infer implements a Graph Challenge–style sparse deep neural
// network inference engine: repeated application of
//
//	Y ← min(cap, ReLU(Y·Wl + bl))
//
// over a stack of sparse weight matrices, batched over input rows and
// parallelized over row blocks. RadiX-Net's flagship downstream use is
// generating the synthetic networks for the MIT/IEEE/Amazon Sparse DNN
// Graph Challenge; this engine makes that workload executable here
// (experiment E10).
//
// The hot path is a fused, allocation-free kernel stack. Each layer is
// precomputed into a CSC (transposed) sparse.Kernel so a dense activation
// row is computed by gathers — one in-edge dot product per output element —
// instead of scatters, eliminating random writes; rows whose activations
// are mostly zero instead take the CSR scatter dual, whose zero-input skip
// does only the work the live activations require (the engine chooses per
// row from the exact activation count the previous layer's epilogue
// produced for free). Activations ping-pong between two preallocated
// buffers sized to the widest layer, so an N-layer forward pass performs
// O(1) allocations (zero in steady state) instead of O(N). The bias +
// threshold-ReLU + cap epilogue is fused into the multiply loop, and rows
// whose activations go all-zero mid-stack are dropped from subsequent
// layers. Layer steps dispatch on the persistent parallel.Shared worker
// pool.
package infer

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/nn"
	"github.com/radix-net/radixnet/internal/parallel"
	"github.com/radix-net/radixnet/internal/sparse"
	"github.com/radix-net/radixnet/internal/topology"
)

// ErrBusy is returned by Infer when another Infer call is already in
// flight on the same engine. Engines share ping-pong scratch across calls
// and are therefore single-flight by contract; concurrent callers must use
// one engine per worker (see Clone) — the serving layer's engine pools are
// built on this guarantee.
var ErrBusy = errors.New("infer: engine busy: concurrent Infer on a shared engine (use one engine per worker; see Engine.Clone)")

// Engine holds the weight stack of a sparse feedforward network prepared
// for batched threshold-ReLU inference.
type Engine struct {
	layers []*sparse.Matrix
	bias   []float64 // one uniform bias per layer
	cap    float64   // activation ceiling; 0 disables clamping

	kernels  []*sparse.Kernel      // CSC gather form of each layer
	radix    []*sparse.RadixKernel // verified stride plans, nil unless radix-structured
	stockham bool                  // radix kernels run the packed Stockham layout
	kind     KernelKind            // kernel family Infer dispatches to
	pool     *parallel.Pool
	step     func(lo, hi int) // bound once; dispatched per layer on the pool
	inUse    atomic.Bool      // single-flight guard for the shared scratch

	// prof, when non-nil, samples per-layer kernel timings (see
	// profile.go). Shared across clones so a warm pool aggregates into
	// one set of tallies; nil costs one atomic load per Infer.
	prof atomic.Pointer[Profiler]

	// Reusable per-batch state, sized by ensure. The caller's batch is read
	// directly (and only read) by the first layer step — Infer never writes
	// to the caller's storage, and drops the reference before returning;
	// bufA/bufB ping-pong the layer activations.
	batch      int
	maxW       int // widest layer output, the per-row buffer stride
	bufA, bufB []float64
	bufS       []float64 // per-row scatter scratch, Stockham mode only
	nzIdx      []int32   // per-row input nonzero positions (stride w0), Stockham mode only
	active     []int32   // rows still carrying nonzero activations, ascending
	rowNNZ     []int32   // per-row activation count after the last layer step
	outView    *sparse.Dense

	// Current layer, read by step across the worker pool.
	cur struct {
		kern       *sparse.Kernel
		rk         *sparse.RadixKernel // non-nil iff this layer runs the radix kernel
		mat        *sparse.Matrix
		in, out    []float64
		nz         []int32 // staged nonzero positions (stride inW); layer 0 Stockham only
		inW, outW  int
		bias, clip float64
	}
}

// New builds an engine from explicit weight matrices and per-layer biases.
// cap ≤ 0 disables the activation ceiling. The engine precomputes a CSC
// gather kernel per layer holding a reordered copy of each matrix's values;
// the matrices are retained as the authoritative weights. Callers that
// mutate weight values after construction (e.g. through a retained
// Matrix.Values() slice) must call RefreshWeights before the next Infer,
// or the kernels keep computing with the construction-time values.
func New(layers []*sparse.Matrix, bias []float64, cap float64) (*Engine, error) {
	if len(layers) == 0 {
		return nil, errors.New("infer: need at least one layer")
	}
	if len(bias) != len(layers) {
		return nil, fmt.Errorf("infer: %d biases for %d layers", len(bias), len(layers))
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].Cols() != layers[i].Rows() {
			return nil, fmt.Errorf("infer: layer %d is %dx%d but layer %d has %d rows",
				i-1, layers[i-1].Rows(), layers[i-1].Cols(), i, layers[i].Rows())
		}
	}
	if cap < 0 {
		cap = 0
	}
	e := &Engine{layers: layers, bias: append([]float64(nil), bias...), cap: cap}
	e.kernels = make([]*sparse.Kernel, len(layers))
	for i, l := range layers {
		k, err := sparse.NewKernel(l)
		if err != nil {
			return nil, fmt.Errorf("infer: layer %d: %w", i, err)
		}
		e.kernels[i] = k
	}
	e.pool = parallel.Shared()
	e.step = e.layerStep
	return e, nil
}

// FromTopology assigns every edge of the FNNT the same weight and every
// layer the same bias — the Graph Challenge convention, where weights are
// 1/16 and biases tuned per width so activations neither die nor saturate.
func FromTopology(g *topology.FNNT, weight, bias, cap float64) (*Engine, error) {
	layers := make([]*sparse.Matrix, g.NumSubs())
	biases := make([]float64, g.NumSubs())
	for i := range layers {
		layers[i] = sparse.MatrixFromPattern(g.Sub(i), weight)
		biases[i] = bias
	}
	return New(layers, biases, cap)
}

// FromConfig generates the RadiX-Net of cfg and wraps it in an engine with
// Graph Challenge weighting: weight 1/16 scaled by fan-in relative to the
// challenge's 32, bias per the challenge convention, cap 32. Kernel
// selection is KernelAuto: the config proves the layers radix-structured,
// so stride plans are compiled and the engine runs the structure-aware
// butterfly kernel (SetKernel(KernelCSC) restores the generic path).
func FromConfig(cfg core.Config) (*Engine, error) {
	return FromConfigKernel(cfg, KernelAuto)
}

// fromConfigBase builds the CSC engine for cfg without kernel selection.
func fromConfigBase(cfg core.Config) (*Engine, error) {
	g, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	// Mean in-degree of the first layer sets the scale. Weight 4/fan-in with
	// a small negative bias keeps typical sparse inputs alive through
	// arbitrarily deep stacks: a neuron with ≥2 active in-edges clears the
	// bias, and growth saturates at the challenge's activation ceiling of 32
	// rather than exploding.
	inDeg := float64(g.Sub(0).NNZ()) / float64(g.Sub(0).Cols())
	weight := 4.0 / inDeg
	const bias = -0.10
	return FromTopology(g, weight, bias, 32)
}

// NumLayers returns the number of weight layers.
func (e *Engine) NumLayers() int { return len(e.layers) }

// TotalNNZ returns the total stored weight count across layers — the "edges
// traversed per input row" figure used for throughput reporting.
func (e *Engine) TotalNNZ() int {
	total := 0
	for _, l := range e.layers {
		total += l.NNZ()
	}
	return total
}

// maxCols returns the widest layer output, which sizes the ping-pong
// buffers.
func (e *Engine) maxCols() int {
	w := 0
	for _, l := range e.layers {
		if l.Cols() > w {
			w = l.Cols()
		}
	}
	return w
}

// ensure sizes the reusable buffers for a batch of the given row count.
// Calls with an unchanged batch size perform no allocation.
func (e *Engine) ensure(batch int) {
	if batch == e.batch {
		return
	}
	e.batch = batch
	maxW := e.maxCols()
	e.maxW = maxW
	if need := batch * maxW; cap(e.bufA) < need {
		e.bufA = make([]float64, need)
		e.bufB = make([]float64, need)
	}
	if need := batch * maxW; e.stockham && cap(e.bufS) < need {
		// Stockham scatters accumulate in natural layout before the packed
		// epilogue; each batch row gets a private scratch region.
		e.bufS = make([]float64, need)
	}
	if need := batch * e.layers[0].Rows(); e.stockham && cap(e.nzIdx) < need {
		// The staging scan records each input row's nonzero positions so the
		// layer-0 ring scatter skips straight to them.
		e.nzIdx = make([]int32, need)
	}
	if cap(e.active) < batch {
		e.active = make([]int32, 0, batch)
	}
	if cap(e.rowNNZ) < batch {
		e.rowNNZ = make([]int32, batch)
	}
	e.rowNNZ = e.rowNNZ[:batch]
	// The final layer's output lands in bufA when the layer count is odd
	// (layer l writes bufA iff l is even), so the returned view has a fixed
	// home per engine.
	lastW := e.layers[len(e.layers)-1].Cols()
	final := e.bufA
	if len(e.layers)%2 == 0 {
		final = e.bufB
	}
	e.outView, _ = sparse.DenseFromSlice(batch, lastW, final[:batch*lastW])
}

// layerStep processes active rows [lo, hi) of the current layer: one fused
// multiply + epilogue pass per row, recording the row's new activation
// count. Dense rows use the CSC gather (every output written once, no
// random writes), blocked four batch rows at a time so each stored entry's
// index and weight are loaded once per quad; mostly-zero rows use the CSR
// scatter, whose zero-input skip does only the work the row's live
// activations require. All paths accumulate in the same order and agree
// bitwise. layerStep runs concurrently for disjoint ranges on the worker
// pool.
func (e *Engine) layerStep(lo, hi int) {
	cur := &e.cur
	if cur.rk != nil {
		e.layerStepRadix(lo, hi)
		return
	}
	var quad [4]int
	var quadNNZ [4]int
	qn := 0
	for i := lo; i < hi; i++ {
		b := int(e.active[i])
		if int(e.rowNNZ[b])*2 < cur.inW {
			inRow := cur.in[b*cur.inW : (b+1)*cur.inW]
			outRow := cur.out[b*cur.outW : (b+1)*cur.outW]
			e.rowNNZ[b] = int32(cur.mat.FusedScatterRow(outRow, inRow, cur.bias, cur.clip))
			continue
		}
		quad[qn] = b
		qn++
		if qn == 4 {
			b0, b1, b2, b3 := quad[0], quad[1], quad[2], quad[3]
			cur.kern.FusedGatherRow4(
				cur.out[b0*cur.outW:(b0+1)*cur.outW],
				cur.out[b1*cur.outW:(b1+1)*cur.outW],
				cur.out[b2*cur.outW:(b2+1)*cur.outW],
				cur.out[b3*cur.outW:(b3+1)*cur.outW],
				cur.in[b0*cur.inW:(b0+1)*cur.inW],
				cur.in[b1*cur.inW:(b1+1)*cur.inW],
				cur.in[b2*cur.inW:(b2+1)*cur.inW],
				cur.in[b3*cur.inW:(b3+1)*cur.inW],
				cur.bias, cur.clip, &quadNNZ)
			for t, bq := range quad {
				e.rowNNZ[bq] = int32(quadNNZ[t])
			}
			qn = 0
		}
	}
	for t := 0; t < qn; t++ {
		b := quad[t]
		inRow := cur.in[b*cur.inW : (b+1)*cur.inW]
		outRow := cur.out[b*cur.outW : (b+1)*cur.outW]
		e.rowNNZ[b] = int32(cur.kern.FusedGatherRow(outRow, inRow, cur.bias, cur.clip))
	}
}

// layerStepRadix is layerStep on the structure-aware butterfly kernel.
// Arithmetic addressing removes the per-entry index load, so the gather
// blocks eight batch rows per weight load (the CSC path's quad blocking is
// index-bandwidth-bound past four); the dense-row octets are flushed through
// FusedGatherRow8 and remainders fall back to the quad and single-row forms
// of the same kernel. All forms accumulate in the same order, so outputs
// stay bit-identical to the CSC path. Chunks arrive in multiples of the
// pool grain (8), so remainders only occur in a range's final rows.
func (e *Engine) layerStepRadix(lo, hi int) {
	cur := &e.cur
	rk := cur.rk
	var oct [8]int
	var octNNZ [8]int
	var ins, outs [8][]float64
	qn := 0
	for i := lo; i < hi; i++ {
		b := int(e.active[i])
		if int(e.rowNNZ[b])*2 < cur.inW {
			inRow := cur.in[b*cur.inW : (b+1)*cur.inW]
			outRow := cur.out[b*cur.outW : (b+1)*cur.outW]
			if e.stockham {
				scratch := e.bufS[b*e.maxW : b*e.maxW+cur.outW]
				if cur.nz != nil {
					nz := cur.nz[b*cur.inW : b*cur.inW+int(e.rowNNZ[b])]
					e.rowNNZ[b] = int32(rk.FusedScatterRowStockhamNZ(outRow, inRow, nz, scratch, cur.bias, cur.clip))
				} else {
					e.rowNNZ[b] = int32(rk.FusedScatterRowStockham(outRow, inRow, scratch, cur.bias, cur.clip))
				}
			} else {
				e.rowNNZ[b] = int32(rk.FusedScatterRow(outRow, inRow, cur.bias, cur.clip))
			}
			continue
		}
		oct[qn] = b
		qn++
		if qn == 8 {
			for t, bq := range oct {
				ins[t] = cur.in[bq*cur.inW : (bq+1)*cur.inW]
				outs[t] = cur.out[bq*cur.outW : (bq+1)*cur.outW]
			}
			rk.FusedGatherRow8(&outs, &ins, cur.bias, cur.clip, &octNNZ)
			for t, bq := range oct {
				e.rowNNZ[bq] = int32(octNNZ[t])
			}
			qn = 0
		}
	}
	t := 0
	if qn >= 4 {
		var quadNNZ [4]int
		b0, b1, b2, b3 := oct[0], oct[1], oct[2], oct[3]
		rk.FusedGatherRow4(
			cur.out[b0*cur.outW:(b0+1)*cur.outW],
			cur.out[b1*cur.outW:(b1+1)*cur.outW],
			cur.out[b2*cur.outW:(b2+1)*cur.outW],
			cur.out[b3*cur.outW:(b3+1)*cur.outW],
			cur.in[b0*cur.inW:(b0+1)*cur.inW],
			cur.in[b1*cur.inW:(b1+1)*cur.inW],
			cur.in[b2*cur.inW:(b2+1)*cur.inW],
			cur.in[b3*cur.inW:(b3+1)*cur.inW],
			cur.bias, cur.clip, &quadNNZ)
		for j, bq := range oct[:4] {
			e.rowNNZ[bq] = int32(quadNNZ[j])
		}
		t = 4
	}
	for ; t < qn; t++ {
		b := oct[t]
		inRow := cur.in[b*cur.inW : (b+1)*cur.inW]
		outRow := cur.out[b*cur.outW : (b+1)*cur.outW]
		e.rowNNZ[b] = int32(rk.FusedGatherRow(outRow, inRow, cur.bias, cur.clip))
	}
}

// Infer runs the batch through every layer with threshold-ReLU semantics
// and returns the final activations. The input batch is never mutated.
//
// The returned matrix is a view into the engine's internal ping-pong
// buffer: it is valid until the next Infer or InferCategories call on the
// same engine, which overwrites it (clone it to keep it). This is what
// makes the steady-state forward pass allocation-free. Engines are not safe
// for concurrent Infer calls: a call that overlaps another returns ErrBusy
// rather than corrupting the shared scratch; use Clone for per-worker
// engines.
func (e *Engine) Infer(y0 *sparse.Dense) (*sparse.Dense, error) {
	if !e.inUse.CompareAndSwap(false, true) {
		return nil, ErrBusy
	}
	defer e.inUse.Store(false)
	return e.infer(y0)
}

// infer is the body of Infer, running under the single-flight guard.
func (e *Engine) infer(y0 *sparse.Dense) (*sparse.Dense, error) {
	if y0.Cols() != e.layers[0].Rows() {
		return nil, fmt.Errorf("infer: batch width %d, first layer expects %d", y0.Cols(), e.layers[0].Rows())
	}
	batch := y0.Rows()
	e.ensure(batch)

	// Scan the input, counting each row's nonzeros (which seeds the
	// gather/scatter choice for layer 0) and the active-row list: a row that
	// is already all-zero maps to clamp(relu(bias)) per element, which the
	// per-layer reactivation below handles, so it starts inactive. The first
	// layer step reads the caller's storage directly — no layer ever writes
	// its input, so staging a private copy would only add a batch-sized
	// memmove to every call.
	w0 := y0.Cols()
	in := y0.Data()[:batch*w0]
	if len(in) > 0 && len(e.bufA) > 0 && &in[0] == &e.bufA[0] {
		// Chained inference: the caller handed the engine's own output view
		// back as input, and layer 0 writes that same buffer. Stage the batch
		// in bufB, which layer 0 never touches and layer 1 reclaims only
		// after the input is consumed.
		if cap(e.bufB) < len(in) {
			e.bufB = make([]float64, len(in))
		}
		stage := e.bufB[:len(in)]
		copy(stage, in)
		in = stage
	}
	e.active = e.active[:0]
	record := e.stockham && e.kind == KernelRadix
	for b := 0; b < batch; b++ {
		row := in[b*w0 : (b+1)*w0]
		nnz := 0
		if record {
			// Record nonzero positions for the layer-0 ring scatter while
			// counting: the position is stored unconditionally and the
			// cursor advances by the liveness bit, so the recording pass is
			// branchless too.
			idx := e.nzIdx[b*w0 : (b+1)*w0]
			for i, v := range row {
				y := math.Float64bits(v) << 1
				idx[nnz] = int32(i)
				nnz += int((y | -y) >> 63)
			}
		} else {
			for _, v := range row {
				// Branchless v != 0: shifting out the sign bit makes ±0 read
				// as zero and everything else (including NaN) as live,
				// exactly the float comparison's semantics, without a
				// data-dependent branch on every staged element.
				y := math.Float64bits(v) << 1
				nnz += int((y | -y) >> 63)
			}
		}
		e.rowNNZ[b] = int32(nnz)
		if nnz > 0 {
			e.active = append(e.active, int32(b))
		}
	}

	inW := w0
	out := e.bufA
	other := e.bufB
	// One pointer load decides whether this batch is profiled; when it
	// is, each layer's kernel dispatch is timed individually.
	prof := e.prof.Load()
	profiled := prof != nil && prof.sample()
	for l, kern := range e.kernels {
		outW := kern.Cols()
		b := e.bias[l]
		e.cur.kern, e.cur.mat, e.cur.in, e.cur.out = kern, e.layers[l], in, out
		e.cur.rk = nil
		e.cur.nz = nil
		if e.kind == KernelRadix {
			e.cur.rk = e.radix[l]
			if l == 0 && record {
				e.cur.nz = e.nzIdx
			}
		}
		e.cur.inW, e.cur.outW = inW, outW
		e.cur.bias, e.cur.clip = b, e.cap
		// The grain keeps pool chunks at whole gather blocks — quads on the
		// CSC path, octets on the radix path — so the widest kernel engages
		// even when many workers shrink the chunks.
		grain := 4
		if e.cur.rk != nil {
			grain = 8
		}
		if profiled {
			rows := len(e.active)
			t0 := time.Now()
			e.pool.Run(rows, grain, e.step)
			prof.record(l, rows, e.layers[l].NNZ(), time.Since(t0))
		} else {
			e.pool.Run(len(e.active), grain, e.step)
		}

		if b > 0 {
			// A positive bias resurrects all-zero rows: their image is the
			// constant clamp(relu(bias)) > 0 in every element. Fill them
			// directly (their gather would be a no-op over zeros) and fold
			// them back into the active set.
			phi := b
			if e.cap > 0 && phi > e.cap {
				phi = e.cap
			}
			ai := 0
			for r := 0; r < batch; r++ {
				if ai < len(e.active) && int(e.active[ai]) == r {
					ai++
					continue
				}
				row := out[r*outW : (r+1)*outW]
				for c := range row {
					row[c] = phi
				}
				e.rowNNZ[r] = int32(outW)
			}
			e.active = e.active[:0]
			for r := 0; r < batch; r++ {
				if e.rowNNZ[r] > 0 {
					e.active = append(e.active, int32(r))
				}
			}
		} else {
			// Zero-input rows stay zero through a non-positive bias, so the
			// active list only ever shrinks: compact it in place.
			kept := 0
			for _, r := range e.active {
				if e.rowNNZ[r] > 0 {
					e.active[kept] = r
					kept++
				}
			}
			e.active = e.active[:kept]
		}

		in, inW = out[:batch*outW], outW
		out, other = other, out
	}

	// Rows that died mid-stack were skipped above; their slots in the final
	// buffer hold stale data from earlier layers or calls. Zero them.
	final := e.outView
	lastW := final.Cols()
	ai := 0
	for r := 0; r < batch; r++ {
		if ai < len(e.active) && int(e.active[ai]) == r {
			ai++
			continue
		}
		row := final.Data()[r*lastW : (r+1)*lastW]
		for c := range row {
			row[c] = 0
		}
	}
	// Layer 0 read the caller's storage in place; drop the reference so the
	// engine never pins a caller batch between calls.
	e.cur.in = nil
	return final, nil
}

// InferUnfused is the pre-kernel scatter implementation — one allocating
// CSR DenseMul per layer followed by a separate epilogue pass — retained as
// the performance baseline that BENCH_infer.json compares the fused path
// against. Unlike the fused path it returns freshly allocated storage.
func (e *Engine) InferUnfused(y0 *sparse.Dense) (*sparse.Dense, error) {
	if y0.Cols() != e.layers[0].Rows() {
		return nil, fmt.Errorf("infer: batch width %d, first layer expects %d", y0.Cols(), e.layers[0].Rows())
	}
	y := y0
	for i, w := range e.layers {
		next, err := w.DenseMul(y)
		if err != nil {
			return nil, fmt.Errorf("infer: layer %d: %w", i, err)
		}
		b := e.bias[i]
		clip := e.cap
		data := next.Data()
		parallel.Blocks(len(data), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				v := data[j] + b
				if v < 0 {
					v = 0
				} else if clip > 0 && v > clip {
					v = clip
				}
				data[j] = v
			}
		})
		y = next
	}
	if y == y0 {
		// Unreachable with ≥1 layer, but never hand the caller's storage back.
		y = y0.Clone()
	}
	return y, nil
}

// InferCategories runs Infer and returns, per input row, whether the row
// ended with any positive activation (the Graph Challenge's category
// criterion) plus the index of its strongest neuron. The single-flight
// guard is held until the scan over the output view finishes, so an
// overlapping Infer gets ErrBusy instead of overwriting the view mid-scan.
func (e *Engine) InferCategories(y0 *sparse.Dense) (active []bool, argmax []int, err error) {
	if !e.inUse.CompareAndSwap(false, true) {
		return nil, nil, ErrBusy
	}
	defer e.inUse.Store(false)
	y, err := e.infer(y0)
	if err != nil {
		return nil, nil, err
	}
	active = make([]bool, y.Rows())
	argmax = nn.Argmax(y)
	for r := 0; r < y.Rows(); r++ {
		row := y.RowSlice(r)
		for _, v := range row {
			if v > 0 {
				active[r] = true
				break
			}
		}
	}
	return active, argmax, nil
}

// ReferenceInfer is a deliberately simple single-threaded implementation of
// the same semantics, used to validate Infer in tests.
func (e *Engine) ReferenceInfer(y0 *sparse.Dense) (*sparse.Dense, error) {
	if y0.Cols() != e.layers[0].Rows() {
		return nil, fmt.Errorf("infer: batch width %d, first layer expects %d", y0.Cols(), e.layers[0].Rows())
	}
	y := y0.Clone()
	for i, w := range e.layers {
		next, err := sparse.NewDense(y.Rows(), w.Cols())
		if err != nil {
			return nil, err
		}
		for r := 0; r < y.Rows(); r++ {
			for k := 0; k < y.Cols(); k++ {
				xv := y.At(r, k)
				if xv == 0 {
					continue
				}
				w.RowEntries(k, func(c int, wv float64) {
					next.Set(r, c, next.At(r, c)+xv*wv)
				})
			}
			for c := 0; c < next.Cols(); c++ {
				v := next.At(r, c) + e.bias[i]
				if v < 0 {
					v = 0
				} else if e.cap > 0 && v > e.cap {
					v = e.cap
				}
				next.Set(r, c, v)
			}
		}
		y = next
	}
	return y, nil
}

// RefreshWeights resyncs the precomputed kernels with the current values of
// the layer matrices. Call it after mutating weights through slices
// retained from before New; Infer otherwise keeps using the values the
// kernels were built from.
func (e *Engine) RefreshWeights() {
	for i, l := range e.layers {
		// Same pattern, same engine: Refresh cannot fail here.
		_ = e.kernels[i].Refresh(l)
	}
	for _, rk := range e.radix {
		rk.RefreshValues() // Stockham-ordered weight copies are not shared storage
	}
}

// Clone returns an engine sharing this engine's immutable weight stack —
// the layer matrices, biases, and precomputed CSC kernels — with fresh,
// independent scratch state (ping-pong buffers, active-row lists,
// single-flight guard). A pool of clones serves concurrent batches without
// duplicating the model: N clones cost N sets of activation buffers, not N
// copies of the weights. Compiled stride plans (and the kernel selection)
// are shared the same way, so a radix-kernel pool compiles each plan
// exactly once. Clones inherit the parent's worker pool; use
// SetPool to give each its own parallelism budget. Weight mutation
// (RefreshWeights, PerturbWeights) through any clone is visible to all of
// them and must not race an in-flight Infer — serving treats weights as
// frozen after the pool is built.
func (e *Engine) Clone() *Engine {
	c := &Engine{layers: e.layers, bias: e.bias, cap: e.cap, kernels: e.kernels,
		radix: e.radix, stockham: e.stockham, kind: e.kind, pool: e.pool}
	c.step = c.layerStep
	c.prof.Store(e.prof.Load()) // clones aggregate into the parent's profiler
	return c
}

// SetPool directs the engine's per-layer steps at the given worker pool
// instead of the process-wide parallel.Shared pool (nil restores the shared
// pool). Engine pools in the serving layer give each warm engine a private
// pool sized parallel.Quota(poolSize) so concurrent batches split the
// machine instead of oversubscribing it. Must not be called while an Infer
// is in flight.
func (e *Engine) SetPool(p *parallel.Pool) {
	if p == nil {
		p = parallel.Shared()
	}
	e.pool = p
}

// PerturbWeights adds uniform noise in ±scale to every stored weight,
// seeded, and resyncs the precomputed kernels; used by robustness tests and
// benchmarks to avoid the all-equal weight special case.
func (e *Engine) PerturbWeights(scale float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, l := range e.layers {
		vals := l.Values()
		for j := range vals {
			vals[j] += (rng.Float64()*2 - 1) * scale
		}
	}
	e.RefreshWeights()
}
