package infer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/parallel"
)

// TestInferConcurrentCallsReturnBusy hammers one engine from many
// goroutines: every call must either succeed or fail with ErrBusy, never
// corrupt the shared scratch (the race detector verifies the latter), and
// the engine must still produce reference-exact results afterwards. The
// serving layer's engine pools rely on this single-flight contract.
func TestInferConcurrentCallsReturnBusy(t *testing.T) {
	e := smallEngine(t)
	in, err := dataset.SparseBatch(4, 16, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 40
	var ok, busy atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch _, err := e.Infer(in); {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrBusy):
					busy.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if total := ok.Load() + busy.Load(); total != goroutines*iters {
		t.Fatalf("accounted %d of %d calls", total, goroutines*iters)
	}
	if ok.Load() == 0 {
		t.Fatal("no Infer call ever acquired the engine")
	}
	// The guard must release cleanly: a fresh call succeeds and is exact.
	got, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.ReferenceInfer(in)
	if err != nil {
		t.Fatal(err)
	}
	if diff, err := got.MaxAbsDiff(want); err != nil || diff != 0 {
		t.Fatalf("post-contention result diverged: diff=%v err=%v", diff, err)
	}
}

// TestCloneConcurrentInference checks the engine-pool contract end to end:
// clones share weights but own their scratch, so concurrent Infer calls on
// distinct clones must all succeed (no ErrBusy between clones) and agree
// bitwise with the reference oracle.
func TestCloneConcurrentInference(t *testing.T) {
	parent := smallEngine(t)
	parent.PerturbWeights(0.1, 3) // avoid the all-equal-weight special case
	engines := []*Engine{parent, parent.Clone(), parent.Clone(), parent.Clone()}
	const iters = 25
	var wg sync.WaitGroup
	for i, e := range engines {
		in, err := dataset.SparseBatch(3, 16, 4, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		want, err := parent.ReferenceInfer(in)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				got, err := e.Infer(in)
				if err != nil {
					t.Errorf("clone Infer: %v", err)
					return
				}
				if diff, err := got.MaxAbsDiff(want); err != nil || diff >= 1e-12 {
					t.Errorf("clone diverged from reference: diff=%v err=%v", diff, err)
					return
				}
			}
		}(e)
	}
	wg.Wait()
}

// TestSetPoolMatchesReference runs an engine on a private 2-worker pool and
// on a serial (1-worker) pool; both must agree bitwise with the shared-pool
// result.
func TestSetPoolMatchesReference(t *testing.T) {
	e := smallEngine(t)
	in, err := dataset.SparseBatch(8, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.ReferenceInfer(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		p := parallel.NewPool(workers)
		e.SetPool(p)
		got, err := e.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		if diff, derr := got.MaxAbsDiff(want); derr != nil || diff != 0 {
			t.Fatalf("workers=%d: diff=%v err=%v", workers, diff, derr)
		}
		e.SetPool(nil) // restore shared before closing the private pool
		p.Close()
	}
	got, err := e.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if diff, derr := got.MaxAbsDiff(want); derr != nil || diff != 0 {
		t.Fatalf("after SetPool(nil): diff=%v err=%v", diff, derr)
	}
}

// TestInferCategoriesHoldsGuard pins that InferCategories participates in
// the single-flight contract for its whole duration (it scans the shared
// output view after the forward pass).
func TestInferCategoriesHoldsGuard(t *testing.T) {
	e := smallEngine(t)
	in, err := dataset.SparseBatch(2, 16, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	e.inUse.Store(true)
	if _, _, err := e.InferCategories(in); !errors.Is(err, ErrBusy) {
		t.Fatalf("InferCategories with busy engine = %v, want ErrBusy", err)
	}
	e.inUse.Store(false)
	active, argmax, err := e.InferCategories(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 2 || len(argmax) != 2 {
		t.Fatalf("shapes: %d active, %d argmax", len(active), len(argmax))
	}
}
