package infer

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
)

// randomRadixConfig draws a config with 1–2 mixed-radix systems (equal
// products) and an optional dense shape, covering EMR and Kronecker-lifted
// layers.
func randomRadixConfig(t *testing.T, rng *rand.Rand) core.Config {
	t.Helper()
	pick := [][]int{{2, 2, 2}, {2, 4}, {4, 2}, {8}, {3, 3}, {2, 2}, {4, 4}}
	sysA := pick[rng.Intn(len(pick))]
	systems := []radix.System{radix.MustNew(sysA...)}
	if rng.Intn(2) == 0 {
		prod := 1
		for _, r := range sysA {
			prod *= r
		}
		// Second system with the same product so the config validates.
		for _, cand := range pick {
			p := 1
			for _, r := range cand {
				p *= r
			}
			if p == prod {
				systems = append(systems, radix.MustNew(cand...))
				break
			}
		}
	}
	var shape []int
	if rng.Intn(2) == 0 {
		n := 0
		for _, s := range systems {
			n += s.Len()
		}
		shape = make([]int, n+1)
		for i := range shape {
			shape[i] = 1 + rng.Intn(3)
		}
	}
	cfg, err := core.NewConfig(systems, shape)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestRadixKernelEngineBitIdentical is the tentpole property test at engine
// scope: for random radix configs and batch sizes (including non-multiples
// of the quad width, so gather-quad, gather-remainder and scatter paths all
// engage), full-engine inference on the radix kernel is bit-identical to
// the fused CSC kernel, and both match InferUnfused within float tolerance.
func TestRadixKernelEngineBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		cfg := randomRadixConfig(t, rng)
		e, err := FromConfigKernel(cfg, KernelRadix)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, cfg, err)
		}
		if e.Kernel() != KernelRadix || !e.HasRadixPlans() {
			t.Fatalf("trial %d: engine did not select radix kernel", trial)
		}
		e.PerturbWeights(0.15, int64(trial))
		width := e.layers[0].Rows()
		batchRows := 1 + rng.Intn(9) // covers 1..9: quads plus remainders
		nnz := 1 + rng.Intn(width)
		batch, err := dataset.SparseBatch(batchRows, width, nnz, int64(trial*31+1))
		if err != nil {
			t.Fatal(err)
		}

		radixOut, err := e.Infer(batch)
		if err != nil {
			t.Fatal(err)
		}
		radixCopy := radixOut.Clone()

		if err := e.SetKernel(KernelCSC); err != nil {
			t.Fatal(err)
		}
		cscOut, err := e.Infer(batch)
		if err != nil {
			t.Fatal(err)
		}
		rd, cd := radixCopy.Data(), cscOut.Data()
		for i := range rd {
			if rd[i] != cd[i] {
				t.Fatalf("trial %d (%v): radix and CSC outputs differ at %d: %x vs %x",
					trial, cfg, i, rd[i], cd[i])
			}
		}

		unfused, err := e.InferUnfused(batch)
		if err != nil {
			t.Fatal(err)
		}
		ud := unfused.Data()
		for i := range rd {
			d := rd[i] - ud[i]
			if d < -1e-9 || d > 1e-9 {
				t.Fatalf("trial %d: radix vs unfused differ at %d: %v vs %v", trial, i, rd[i], ud[i])
			}
		}

		if err := e.SetKernel(KernelAuto); err != nil {
			t.Fatal(err)
		}
		if e.Kernel() != KernelRadix {
			t.Fatal("auto did not re-select radix with plans attached")
		}
	}
}

// TestFromConfigAutoSelectsRadix: config-built engines prove their own
// structure, so plain FromConfig now runs the butterfly kernel.
func TestFromConfigAutoSelectsRadix(t *testing.T) {
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kernel() != KernelRadix {
		t.Fatalf("FromConfig kernel = %v, want radix", e.Kernel())
	}
	eCSC, err := FromConfigKernel(cfg, KernelCSC)
	if err != nil {
		t.Fatal(err)
	}
	if eCSC.Kernel() != KernelCSC || eCSC.HasRadixPlans() {
		t.Fatalf("KernelCSC engine compiled plans anyway (kernel %v)", eCSC.Kernel())
	}
}

// TestSetKernelWithoutPlans: engines built from arbitrary matrices have no
// proof of structure — radix must be refused, auto must resolve to CSC.
func TestSetKernelWithoutPlans(t *testing.T) {
	e := smallEngine(t) // FromTopology: no config, no plans
	if e.Kernel() != KernelCSC || e.HasRadixPlans() {
		t.Fatalf("topology-built engine: kernel %v, plans %v", e.Kernel(), e.HasRadixPlans())
	}
	if err := e.SetKernel(KernelRadix); err == nil {
		t.Fatal("SetKernel(KernelRadix) succeeded without compiled plans")
	}
	if err := e.SetKernel(KernelAuto); err != nil || e.Kernel() != KernelCSC {
		t.Fatalf("auto without plans: err %v kernel %v", err, e.Kernel())
	}
}

// TestCompileRadixPlansRejectsMismatchedConfig: a valid config that does not
// describe the engine's matrices must fail verification and leave the engine
// on CSC.
func TestCompileRadixPlansRejectsMismatchedConfig(t *testing.T) {
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := core.NewConfig([]radix.System{radix.MustNew(2, 8)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := FromConfigKernel(cfg, KernelCSC)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.CompileRadixPlans(other); err == nil {
		t.Fatal("mismatched config accepted")
	}
	if fresh.HasRadixPlans() || fresh.Kernel() != KernelCSC {
		t.Fatal("failed compilation left plans attached")
	}
	_ = e
}

// TestRadixCloneSharesPlansConcurrentInfer: clones share compiled stride
// plans; concurrent Infer across a clone pool must be race-free (run under
// -race in CI) and every clone's output bit-identical to the parent's.
func TestRadixCloneSharesPlansConcurrentInfer(t *testing.T) {
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := FromConfigKernel(cfg, KernelRadix)
	if err != nil {
		t.Fatal(err)
	}
	parent.PerturbWeights(0.1, 7)
	width := parent.layers[0].Rows()
	batch, err := dataset.SparseBatch(9, width, width/3, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := parent.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	wantData := append([]float64(nil), want.Data()...)

	const workers = 8
	outs := make([]*sparse.Dense, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := parent.Clone()
		if c.Kernel() != KernelRadix {
			t.Fatalf("clone kernel %v, want radix", c.Kernel())
		}
		wg.Add(1)
		go func(w int, c *Engine) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				out, err := c.Infer(batch)
				if err != nil {
					t.Error(err)
					return
				}
				outs[w] = out.Clone()
			}
		}(w, c)
	}
	wg.Wait()
	for w, out := range outs {
		if out == nil {
			continue // worker errored; already reported
		}
		od := out.Data()
		for i := range wantData {
			if od[i] != wantData[i] {
				t.Fatalf("clone %d output differs at %d: %x vs %x", w, i, od[i], wantData[i])
			}
		}
	}
}
