package infer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
)

func smallEngine(t *testing.T) *Engine {
	t.Helper()
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromTopology(g, 0.5, -0.05, 32)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 0); err == nil {
		t.Fatal("empty engine accepted")
	}
	m := sparse.MatrixFromPattern(sparse.Ones(4, 4), 1)
	if _, err := New([]*sparse.Matrix{m}, []float64{0, 0}, 0); err == nil {
		t.Fatal("bias-count mismatch accepted")
	}
	bad := sparse.MatrixFromPattern(sparse.Ones(5, 4), 1)
	if _, err := New([]*sparse.Matrix{m, bad}, []float64{0, 0}, 0); err == nil {
		t.Fatal("nonconforming layers accepted")
	}
}

func TestInferMatchesReferenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := &Engine{}
		width := 4 + rng.Intn(6)
		layers := 1 + rng.Intn(4)
		for i := 0; i < layers; i++ {
			pat := sparse.SumOfShifts(width, []int{0, 1 + rng.Intn(width-1)})
			m := sparse.MatrixFromPattern(pat, 0.1+rng.Float64())
			e.layers = append(e.layers, m)
			e.bias = append(e.bias, rng.Float64()*0.4-0.2)
		}
		e.cap = 2
		batch, err := dataset.SparseBatch(3+rng.Intn(5), width, 1+rng.Intn(width), seed)
		if err != nil {
			return false
		}
		fast, err := e.Infer(batch)
		if err != nil {
			return false
		}
		slow, err := e.ReferenceInfer(batch)
		if err != nil {
			return false
		}
		diff, err := fast.MaxAbsDiff(slow)
		return err == nil && diff < 1e-10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInferWidthError(t *testing.T) {
	e := smallEngine(t)
	bad, _ := sparse.NewDense(2, 7)
	if _, err := e.Infer(bad); err == nil {
		t.Fatal("wrong batch width accepted")
	}
	if _, err := e.ReferenceInfer(bad); err == nil {
		t.Fatal("wrong batch width accepted by reference")
	}
}

func TestReLUAndCapSemantics(t *testing.T) {
	// Single layer, identity pattern, weight 1: y = clamp(relu(x + bias)).
	m := sparse.MatrixFromPattern(sparse.Identity(3), 1)
	e, err := New([]*sparse.Matrix{m}, []float64{-1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sparse.DenseFromSlice(1, 3, []float64{0.5, 1.5, 10})
	y, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 2} // relu(-0.5)=0, relu(0.5)=0.5, min(9,2)=2
	for i, w := range want {
		if y.At(0, i) != w {
			t.Fatalf("y[%d] = %g, want %g", i, y.At(0, i), w)
		}
	}
}

func TestZeroCapDisablesClamp(t *testing.T) {
	m := sparse.MatrixFromPattern(sparse.Identity(2), 1)
	e, err := New([]*sparse.Matrix{m}, []float64{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sparse.DenseFromSlice(1, 2, []float64{100, 1})
	y, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0, 0) != 100 {
		t.Fatalf("cap=0 should not clamp; got %g", y.At(0, 0))
	}
}

func TestFromConfigGraphChallengeShape(t *testing.T) {
	cfg, err := core.GraphChallengeConfig(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumLayers() != 4 {
		t.Fatalf("layers = %d", e.NumLayers())
	}
	if e.TotalNNZ() != 4*1024*32 {
		t.Fatalf("nnz = %d, want %d", e.TotalNNZ(), 4*1024*32)
	}
	batch, err := dataset.SparseBatch(8, 1024, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows() != 8 || y.Cols() != 1024 {
		t.Fatal("output shape wrong")
	}
}

func TestInferCategories(t *testing.T) {
	e := smallEngine(t)
	batch, err := dataset.SparseBatch(6, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	active, argmax, err := e.InferCategories(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 6 || len(argmax) != 6 {
		t.Fatal("category output length wrong")
	}
	for i, a := range argmax {
		if a < 0 || a >= 16 {
			t.Fatalf("argmax[%d] = %d out of range", i, a)
		}
	}
}

func TestPerturbWeightsChangesOutput(t *testing.T) {
	e := smallEngine(t)
	batch, _ := dataset.SparseBatch(4, 16, 4, 3)
	before, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	e.PerturbWeights(0.05, 7)
	after, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	diff, _ := before.MaxAbsDiff(after)
	if diff == 0 {
		t.Fatal("perturbation had no effect")
	}
}

func TestDeepInferenceStability(t *testing.T) {
	// 120 layers at Graph Challenge weighting must neither explode nor die
	// for typical sparse inputs: some activation must survive to the end.
	cfg, err := core.GraphChallengeConfig(1024, 120)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := dataset.SparseBatch(2, 1024, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	active, _, err := e.InferCategories(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range active {
		if !a {
			t.Fatalf("row %d died across 120 layers; weighting is miscalibrated", i)
		}
	}
}
