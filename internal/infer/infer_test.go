package infer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
)

func smallEngine(t *testing.T) *Engine {
	t.Helper()
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromTopology(g, 0.5, -0.05, 32)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 0); err == nil {
		t.Fatal("empty engine accepted")
	}
	m := sparse.MatrixFromPattern(sparse.Ones(4, 4), 1)
	if _, err := New([]*sparse.Matrix{m}, []float64{0, 0}, 0); err == nil {
		t.Fatal("bias-count mismatch accepted")
	}
	bad := sparse.MatrixFromPattern(sparse.Ones(5, 4), 1)
	if _, err := New([]*sparse.Matrix{m, bad}, []float64{0, 0}, 0); err == nil {
		t.Fatal("nonconforming layers accepted")
	}
}

// randomEngine builds an engine over shift-structured sparse layers with
// rng-drawn weights, biases (both signs) and cap. Exercises cap=0 (no
// ceiling), positive biases (dead-row resurrection) and perturbed weights.
func randomEngine(rng *rand.Rand) (*Engine, int, error) {
	width := 4 + rng.Intn(6)
	depth := 1 + rng.Intn(5)
	layers := make([]*sparse.Matrix, depth)
	biases := make([]float64, depth)
	for i := range layers {
		pat := sparse.SumOfShifts(width, []int{0, 1 + rng.Intn(width-1)})
		layers[i] = sparse.MatrixFromPattern(pat, 0.1+rng.Float64())
		biases[i] = rng.Float64()*0.4 - 0.3
	}
	cap := 0.0 // every third engine runs uncapped
	if rng.Intn(3) > 0 {
		cap = 0.5 + rng.Float64()*2
	}
	e, err := New(layers, biases, cap)
	if err != nil {
		return nil, 0, err
	}
	if rng.Intn(2) == 0 {
		e.PerturbWeights(0.2, rng.Int63())
	}
	return e, width, nil
}

func TestInferMatchesReferenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, width, err := randomEngine(rng)
		if err != nil {
			return false
		}
		batch, err := dataset.SparseBatch(1+rng.Intn(8), width, 1+rng.Intn(width), seed)
		if err != nil {
			return false
		}
		// Zero out some rows entirely to exercise active-row tracking.
		for r := 0; r < batch.Rows(); r++ {
			if rng.Intn(3) == 0 {
				row := batch.RowSlice(r)
				for c := range row {
					row[c] = 0
				}
			}
		}
		fast, err := e.Infer(batch)
		if err != nil {
			return false
		}
		slow, err := e.ReferenceInfer(batch)
		if err != nil {
			return false
		}
		diff, err := fast.MaxAbsDiff(slow)
		if err != nil || diff >= 1e-12 {
			return false
		}
		unfused, err := e.InferUnfused(batch)
		if err != nil {
			return false
		}
		diff, err = unfused.MaxAbsDiff(slow)
		return err == nil && diff < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestInferMatchesReferenceAcrossRadixConfigs(t *testing.T) {
	// The fused kernel against the oracle on real RadiX-Net topologies of
	// varying width/depth, across batch sizes, caps (including cap=0) and
	// perturbed weights.
	systems := [][]int{{4, 4}, {2, 2, 2}, {8, 8}, {3, 3, 4}}
	for si, sys := range systems {
		cfg, err := core.NewConfig([]radix.System{radix.MustNew(sys...)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := core.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, cap := range []float64{0, 2, 32} {
			e, err := FromTopology(g, 0.5, -0.05, cap)
			if err != nil {
				t.Fatal(err)
			}
			e.PerturbWeights(0.1, int64(si))
			width := g.Sub(0).Rows()
			for _, batchRows := range []int{1, 3, 16} {
				batch, err := dataset.SparseBatch(batchRows, width, 1+width/3, int64(si+batchRows))
				if err != nil {
					t.Fatal(err)
				}
				fast, err := e.Infer(batch)
				if err != nil {
					t.Fatal(err)
				}
				slow, err := e.ReferenceInfer(batch)
				if err != nil {
					t.Fatal(err)
				}
				diff, err := fast.MaxAbsDiff(slow)
				if err != nil {
					t.Fatal(err)
				}
				if diff >= 1e-12 {
					t.Fatalf("sys=%v cap=%g batch=%d: fused vs reference diff %g", sys, cap, batchRows, diff)
				}
			}
		}
	}
}

func TestInferDoesNotMutateInput(t *testing.T) {
	// Regression: the engine must never clamp or overwrite the caller's
	// batch, even though the first layer reads it directly.
	e := smallEngine(t)
	batch, err := dataset.SparseBatch(5, 16, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Include values the epilogue would clamp if it ever touched the input.
	batch.Set(0, 0, -3)
	batch.Set(1, 1, 1e6)
	orig := batch.Clone()
	out, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := batch.MaxAbsDiff(orig); diff != 0 {
		t.Fatalf("Infer mutated its input (max diff %g)", diff)
	}
	if &out.Data()[0] == &batch.Data()[0] {
		t.Fatal("Infer returned the caller's storage")
	}
	if _, err := e.InferUnfused(batch); err != nil {
		t.Fatal(err)
	}
	if diff, _ := batch.MaxAbsDiff(orig); diff != 0 {
		t.Fatal("InferUnfused mutated its input")
	}
}

func TestInferAcceptsOwnOutputAsInput(t *testing.T) {
	// Feeding the engine's returned view back in must work: the input is
	// staged into a separate buffer before the ping-pong pass overwrites it.
	e := smallEngine(t)
	batch, err := dataset.SparseBatch(4, 16, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.ReferenceInfer(out1.Clone())
	if err != nil {
		t.Fatal(err)
	}
	out2, err := e.Infer(out1)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := out2.MaxAbsDiff(want)
	if err != nil {
		t.Fatal(err)
	}
	if diff >= 1e-12 {
		t.Fatalf("self-feed diff %g", diff)
	}
}

func TestInferZeroAllocSteadyState(t *testing.T) {
	e := smallEngine(t)
	batch, err := dataset.SparseBatch(8, 16, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Infer(batch); err != nil { // size the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := e.Infer(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Infer allocated %g objects per op, want 0", allocs)
	}
}

func TestInferWidthError(t *testing.T) {
	e := smallEngine(t)
	bad, _ := sparse.NewDense(2, 7)
	if _, err := e.Infer(bad); err == nil {
		t.Fatal("wrong batch width accepted")
	}
	if _, err := e.ReferenceInfer(bad); err == nil {
		t.Fatal("wrong batch width accepted by reference")
	}
	if _, err := e.InferUnfused(bad); err == nil {
		t.Fatal("wrong batch width accepted by unfused baseline")
	}
}

func TestReLUAndCapSemantics(t *testing.T) {
	// Single layer, identity pattern, weight 1: y = clamp(relu(x + bias)).
	m := sparse.MatrixFromPattern(sparse.Identity(3), 1)
	e, err := New([]*sparse.Matrix{m}, []float64{-1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sparse.DenseFromSlice(1, 3, []float64{0.5, 1.5, 10})
	y, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 2} // relu(-0.5)=0, relu(0.5)=0.5, min(9,2)=2
	for i, w := range want {
		if y.At(0, i) != w {
			t.Fatalf("y[%d] = %g, want %g", i, y.At(0, i), w)
		}
	}
}

func TestZeroCapDisablesClamp(t *testing.T) {
	m := sparse.MatrixFromPattern(sparse.Identity(2), 1)
	e, err := New([]*sparse.Matrix{m}, []float64{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sparse.DenseFromSlice(1, 2, []float64{100, 1})
	y, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0, 0) != 100 {
		t.Fatalf("cap=0 should not clamp; got %g", y.At(0, 0))
	}
}

func TestPositiveBiasResurrectsDeadRows(t *testing.T) {
	// Layer 1 kills every activation (large negative bias); layer 2's
	// positive bias must resurrect the rows as constant clamp(bias), exactly
	// as the reference computes.
	m := sparse.MatrixFromPattern(sparse.Identity(3), 1)
	e, err := New([]*sparse.Matrix{m, m, m}, []float64{-100, 0.75, -0.25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sparse.DenseFromSlice(2, 3, []float64{1, 2, 3, 0, 0, 0})
	got, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.ReferenceInfer(x)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := got.MaxAbsDiff(want)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Fatalf("resurrection path diff %g", diff)
	}
	// relu(relu(0·w - 100)·w + 0.75) = 0.75; relu(0.75 - 0.25) = 0.5.
	if got.At(0, 0) != 0.5 {
		t.Fatalf("resurrected activation = %g, want 0.5", got.At(0, 0))
	}
}

func TestDeadRowsAreZeroedInOutput(t *testing.T) {
	// A row that dies mid-stack must come back as explicit zeros, not stale
	// buffer contents from an earlier call.
	m := sparse.MatrixFromPattern(sparse.Identity(2), 1)
	e, err := New([]*sparse.Matrix{m, m}, []float64{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := sparse.DenseFromSlice(2, 2, []float64{5, 5, 7, 7})
	if _, err := e.Infer(full); err != nil { // dirty the buffers
		t.Fatal(err)
	}
	mixed, _ := sparse.DenseFromSlice(2, 2, []float64{0, 0, 1, 1})
	out, err := e.Infer(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 0 || out.At(0, 1) != 0 {
		t.Fatalf("dead row carries stale values: %v %v", out.At(0, 0), out.At(0, 1))
	}
	if out.At(1, 0) != 1 || out.At(1, 1) != 1 {
		t.Fatalf("live row wrong: %v %v", out.At(1, 0), out.At(1, 1))
	}
}

func TestInferVaryingBatchSizes(t *testing.T) {
	// One engine serving batches of different sizes must resize its
	// ping-pong state correctly in both directions.
	e := smallEngine(t)
	for _, rows := range []int{4, 16, 2, 16, 4} {
		batch, err := dataset.SparseBatch(rows, 16, 4, int64(rows))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := e.Infer(batch)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := e.ReferenceInfer(batch)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := fast.MaxAbsDiff(slow)
		if err != nil {
			t.Fatal(err)
		}
		if diff >= 1e-12 {
			t.Fatalf("batch %d: diff %g", rows, diff)
		}
	}
}

func TestFromConfigGraphChallengeShape(t *testing.T) {
	cfg, err := core.GraphChallengeConfig(1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumLayers() != 4 {
		t.Fatalf("layers = %d", e.NumLayers())
	}
	if e.TotalNNZ() != 4*1024*32 {
		t.Fatalf("nnz = %d, want %d", e.TotalNNZ(), 4*1024*32)
	}
	batch, err := dataset.SparseBatch(8, 1024, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows() != 8 || y.Cols() != 1024 {
		t.Fatal("output shape wrong")
	}
}

func TestInferCategories(t *testing.T) {
	e := smallEngine(t)
	batch, err := dataset.SparseBatch(6, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	active, argmax, err := e.InferCategories(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 6 || len(argmax) != 6 {
		t.Fatal("category output length wrong")
	}
	for i, a := range argmax {
		if a < 0 || a >= 16 {
			t.Fatalf("argmax[%d] = %d out of range", i, a)
		}
	}
}

func TestPerturbWeightsChangesOutput(t *testing.T) {
	e := smallEngine(t)
	batch, _ := dataset.SparseBatch(4, 16, 4, 3)
	out, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	before := out.Clone() // Infer returns a reusable view
	e.PerturbWeights(0.05, 7)
	after, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	diff, _ := before.MaxAbsDiff(after)
	if diff == 0 {
		t.Fatal("perturbation had no effect")
	}
	// The kernels must track the perturbed weights, not the originals.
	slow, err := e.ReferenceInfer(batch)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := after.MaxAbsDiff(slow); diff >= 1e-12 {
		t.Fatalf("kernels out of sync with perturbed weights: diff %g", diff)
	}
}

func TestRefreshWeightsResyncsKernels(t *testing.T) {
	// Weights mutated through matrices retained from before New take effect
	// after RefreshWeights — and the refreshed engine matches the oracle,
	// which always reads the matrices live.
	pat := sparse.SumOfShifts(6, []int{0, 2})
	m := sparse.MatrixFromPattern(pat, 0.5)
	e, err := New([]*sparse.Matrix{m}, []float64{-0.05}, 8)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := dataset.SparseBatch(3, 6, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	before := out.Clone()
	vals := m.Values()
	for i := range vals {
		vals[i] *= 1.7
	}
	e.RefreshWeights()
	after, err := e.Infer(batch)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := before.MaxAbsDiff(after); diff == 0 {
		t.Fatal("RefreshWeights had no effect on Infer")
	}
	slow, err := e.ReferenceInfer(batch)
	if err != nil {
		t.Fatal(err)
	}
	if diff, _ := after.MaxAbsDiff(slow); diff >= 1e-12 {
		t.Fatalf("refreshed engine diverges from oracle: diff %g", diff)
	}
}

func TestDeepInferenceStability(t *testing.T) {
	// 120 layers at Graph Challenge weighting must neither explode nor die
	// for typical sparse inputs: some activation must survive to the end.
	cfg, err := core.GraphChallengeConfig(1024, 120)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := dataset.SparseBatch(2, 1024, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	active, _, err := e.InferCategories(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range active {
		if !a {
			t.Fatalf("row %d died across 120 layers; weighting is miscalibrated", i)
		}
	}
}
