package infer

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/sparse"
)

// manifest is the metadata file accompanying an exported network directory.
type manifest struct {
	Layers []layerMeta `json:"layers"`
	Bias   []float64   `json:"bias"`
	Cap    float64     `json:"cap"`
}

type layerMeta struct {
	File string `json:"file"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	NNZ  int    `json:"nnz"`
}

// SaveDir writes the engine to a directory in the Graph Challenge file
// convention: one 1-indexed `src dst weight` TSV per layer
// (layer-0001.tsv, …) plus a manifest.json recording shapes, biases and
// the activation cap. The directory is created if needed; existing files
// with the same names are overwritten.
func (e *Engine) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("infer: %w", err)
	}
	m := manifest{Bias: append([]float64(nil), e.bias...), Cap: e.cap}
	for i, l := range e.layers {
		name := fmt.Sprintf("layer-%04d.tsv", i+1)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("infer: %w", err)
		}
		err = writeWeightedTSV(f, l)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("infer: layer %d: %w", i, err)
		}
		m.Layers = append(m.Layers, layerMeta{File: name, Rows: l.Rows(), Cols: l.Cols(), NNZ: l.NNZ()})
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("infer: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644)
}

// writeWeightedTSV emits per-entry weights (unlike graphio.WriteChallengeTSV
// which writes a constant weight).
func writeWeightedTSV(f *os.File, m *sparse.Matrix) error {
	for r := 0; r < m.Rows(); r++ {
		var rowErr error
		m.RowEntries(r, func(c int, v float64) {
			if rowErr != nil {
				return
			}
			_, rowErr = fmt.Fprintf(f, "%d\t%d\t%g\n", r+1, c+1, v)
		})
		if rowErr != nil {
			return rowErr
		}
	}
	return nil
}

// LoadDir reads a directory written by SaveDir back into an Engine,
// validating every layer against the manifest (shape and nnz must match;
// mismatches indicate corruption and error out rather than silently
// producing a different network).
func LoadDir(dir string) (*Engine, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("infer: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("infer: malformed manifest: %w", err)
	}
	if len(m.Layers) == 0 || len(m.Bias) != len(m.Layers) {
		return nil, fmt.Errorf("infer: manifest lists %d layers with %d biases", len(m.Layers), len(m.Bias))
	}
	layers := make([]*sparse.Matrix, len(m.Layers))
	for i, lm := range m.Layers {
		f, err := os.Open(filepath.Join(dir, lm.File))
		if err != nil {
			return nil, fmt.Errorf("infer: %w", err)
		}
		mat, err := graphio.ReadChallengeTSV(f, lm.Rows, lm.Cols)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("infer: layer %d: %w", i, err)
		}
		if mat.NNZ() != lm.NNZ {
			return nil, fmt.Errorf("infer: layer %d has %d entries, manifest says %d", i, mat.NNZ(), lm.NNZ)
		}
		layers[i] = mat
	}
	return New(layers, m.Bias, m.Cap)
}
