package radix

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		radices []int
		wantErr error
	}{
		{"empty", nil, ErrEmpty},
		{"zero radix", []int{2, 0, 3}, ErrRadixTooSmall},
		{"one radix", []int{1}, ErrRadixTooSmall},
		{"negative", []int{-2}, ErrRadixTooSmall},
		{"valid single", []int{2}, nil},
		{"valid multi", []int{3, 3, 4}, nil},
		{"valid large", []int{1024}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.radices...)
			if tc.wantErr == nil && err != nil {
				t.Fatalf("New(%v) unexpected error: %v", tc.radices, err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("New(%v) error = %v, want %v", tc.radices, err, tc.wantErr)
			}
		})
	}
}

func TestNewOverflow(t *testing.T) {
	// 2^63 overflows int64 (our int on this platform).
	radices := make([]int, 64)
	for i := range radices {
		radices[i] = 2
	}
	if _, err := New(radices...); !errors.Is(err, ErrOverflow) {
		t.Fatalf("expected overflow error, got %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on invalid input should panic")
		}
	}()
	MustNew(1)
}

func TestProductAndPlaceValues(t *testing.T) {
	s := MustNew(3, 3, 4)
	if got := s.Product(); got != 36 {
		t.Fatalf("Product = %d, want 36", got)
	}
	wantPV := []int{1, 3, 9, 36}
	for i, want := range wantPV {
		if got := s.PlaceValue(i); got != want {
			t.Fatalf("PlaceValue(%d) = %d, want %d", i, got, want)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Radix(2) != 4 {
		t.Fatalf("Radix(2) = %d, want 4", s.Radix(2))
	}
}

func TestDecodeKnownValues(t *testing.T) {
	// The paper's Fig. 2 system (3,3,4): value 2+3 means digits (2,1,0)? No:
	// 5 = 2·1 + 1·3 → digits (2,1,0).
	s := MustNew(3, 3, 4)
	cases := map[int][]int{
		0:  {0, 0, 0},
		1:  {1, 0, 0},
		3:  {0, 1, 0},
		9:  {0, 0, 1},
		5:  {2, 1, 0},
		35: {2, 2, 3},
	}
	for v, want := range cases {
		got, err := s.Decode(v)
		if err != nil {
			t.Fatalf("Decode(%d): %v", v, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Decode(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestDecodeRangeErrors(t *testing.T) {
	s := MustNew(2, 2)
	for _, v := range []int{-1, 4, 100} {
		if _, err := s.Decode(v); err == nil {
			t.Fatalf("Decode(%d) should fail", v)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	s := MustNew(2, 3)
	if _, err := s.Encode([]int{1}); err == nil {
		t.Fatal("Encode with wrong digit count should fail")
	}
	if _, err := s.Encode([]int{2, 0}); err == nil {
		t.Fatal("Encode with out-of-range digit should fail")
	}
	if _, err := s.Encode([]int{-1, 0}); err == nil {
		t.Fatal("Encode with negative digit should fail")
	}
}

// randomSystem draws a small random numeral system for property tests.
func randomSystem(rng *rand.Rand) System {
	l := 1 + rng.Intn(4)
	radices := make([]int, l)
	for i := range radices {
		radices[i] = 2 + rng.Intn(5)
	}
	return MustNew(radices...)
}

func TestEncodeDecodeBijectionProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSystem(rng)
		seen := make(map[int]bool, s.Product())
		for v := 0; v < s.Product(); v++ {
			digits, err := s.Decode(v)
			if err != nil {
				return false
			}
			back, err := s.Encode(digits)
			if err != nil || back != v {
				return false
			}
			if seen[back] {
				return false
			}
			seen[back] = true
		}
		return len(seen) == s.Product()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDigitRangesProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSystem(rng)
		for v := 0; v < s.Product(); v++ {
			digits, _ := s.Decode(v)
			for i, d := range digits {
				if d < 0 || d >= s.Radix(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVariance(t *testing.T) {
	s := MustNew(2, 4)
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean = %g, want 3", got)
	}
	if got := s.Variance(); got != 1 {
		t.Fatalf("Variance = %g, want 1", got)
	}
	u := MustNew(5, 5, 5)
	if got := u.Variance(); got != 0 {
		t.Fatalf("uniform Variance = %g, want 0", got)
	}
}

func TestEqual(t *testing.T) {
	a := MustNew(2, 3)
	b := MustNew(2, 3)
	c := MustNew(3, 2)
	d := MustNew(2, 3, 2)
	if !a.Equal(b) {
		t.Fatal("identical systems should be Equal")
	}
	if a.Equal(c) {
		t.Fatal("order matters: (2,3) != (3,2)")
	}
	if a.Equal(d) {
		t.Fatal("length matters")
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, radices := range [][]int{{2}, {2, 2, 2}, {3, 3, 4}, {10, 7}} {
		s := MustNew(radices...)
		parsed, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.String(), err)
		}
		if !s.Equal(parsed) {
			t.Fatalf("round trip %q lost information", s.String())
		}
	}
}

func TestParseForms(t *testing.T) {
	for _, text := range []string{"(3,3,4)", "3,3,4", "  ( 3 , 3 , 4 ) "} {
		s, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if s.Product() != 36 {
			t.Fatalf("Parse(%q).Product = %d, want 36", text, s.Product())
		}
	}
	for _, bad := range []string{"", "()", "(a,b)", "(2,,3)", "(1,2)"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

func TestUniform(t *testing.T) {
	s, err := Uniform(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Product() != 64 || s.Len() != 3 {
		t.Fatalf("Uniform(4,3) = %v", s)
	}
	if s.Variance() != 0 {
		t.Fatal("uniform system must have zero variance")
	}
	if _, err := Uniform(4, 0); err == nil {
		t.Fatal("Uniform with zero depth should fail")
	}
	if _, err := Uniform(1, 3); err == nil {
		t.Fatal("Uniform with base 1 should fail")
	}
}

func TestFactorize(t *testing.T) {
	cases := map[int][]int{
		8:   {2, 2, 2},
		36:  {2, 2, 3, 3},
		7:   {7},
		12:  {2, 2, 3},
		100: {2, 2, 5, 5},
	}
	for n, want := range cases {
		s, err := Factorize(n)
		if err != nil {
			t.Fatalf("Factorize(%d): %v", n, err)
		}
		if !reflect.DeepEqual(s.Radices(), want) {
			t.Fatalf("Factorize(%d) = %v, want %v", n, s.Radices(), want)
		}
		if s.Product() != n {
			t.Fatalf("Factorize(%d).Product = %d", n, s.Product())
		}
	}
	for _, bad := range []int{0, 1, -4} {
		if _, err := Factorize(bad); err == nil {
			t.Fatalf("Factorize(%d) should fail", bad)
		}
	}
}

func TestRadicesCopyIsolation(t *testing.T) {
	input := []int{2, 3, 4}
	s := MustNew(input...)
	input[0] = 99
	if s.Radix(0) != 2 {
		t.Fatal("System must copy its input slice")
	}
	out := s.Radices()
	out[1] = 99
	if s.Radix(1) != 3 {
		t.Fatal("Radices must return a copy")
	}
}
