// Package radix implements mixed-radix numeral systems as defined in §II of
// Robinett & Kepner, "RadiX-Net: Structured Sparse Matrices for Deep Neural
// Networks" (2019).
//
// A mixed-radix numeral system is an ordered set N = (N1, …, NL) of integers
// greater than 1. Writing N′ = ∏ Ni, the system represents every integer in
// {0, …, N′−1} uniquely as a tuple (n1, …, nL) with ni ∈ {0, …, Ni−1} via
//
//	value = Σ_i ni · νi,   νi = ∏_{j<i} Nj   (the place value of digit i).
//
// The bijectivity of this representation is what gives mixed-radix
// topologies exactly one path between any input/output pair (Lemma 1 of the
// paper); the package therefore exposes encoding, decoding and place values
// directly so higher layers can build on the proof structure.
package radix

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrEmpty is returned when a numeral system has no radices.
var ErrEmpty = errors.New("radix: numeral system must contain at least one radix")

// ErrRadixTooSmall is returned when a radix is not an integer greater than 1.
var ErrRadixTooSmall = errors.New("radix: every radix must be an integer greater than 1")

// ErrOverflow is returned when the product of the radices does not fit in an int.
var ErrOverflow = errors.New("radix: product of radices overflows int")

// System is a mixed-radix numeral system: an ordered list of radices, each
// greater than 1. The zero value is invalid; construct with New.
type System struct {
	radices []int
	place   []int // place[i] = ∏_{j<i} radices[j]; len = len(radices)+1, place[L] = N′
}

// New validates the given radices and returns the corresponding system.
// The slice is copied; the caller keeps ownership of its argument.
func New(radices ...int) (System, error) {
	if len(radices) == 0 {
		return System{}, ErrEmpty
	}
	place := make([]int, len(radices)+1)
	place[0] = 1
	for i, r := range radices {
		if r < 2 {
			return System{}, fmt.Errorf("%w (radix %d at position %d)", ErrRadixTooSmall, r, i)
		}
		if place[i] > math.MaxInt/r {
			return System{}, ErrOverflow
		}
		place[i+1] = place[i] * r
	}
	return System{radices: append([]int(nil), radices...), place: place}, nil
}

// MustNew is New but panics on invalid input. Intended for tests, examples
// and package-level presets with compile-time-known radices.
func MustNew(radices ...int) System {
	s, err := New(radices...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of radices L in the system.
func (s System) Len() int { return len(s.radices) }

// Radix returns the i-th radix Ni (0-based).
func (s System) Radix(i int) int { return s.radices[i] }

// Radices returns a copy of the radix list.
func (s System) Radices() []int { return append([]int(nil), s.radices...) }

// Product returns N′ = ∏ Ni, the number of values the system represents.
func (s System) Product() int { return s.place[len(s.radices)] }

// PlaceValue returns νi = ∏_{j<i} Nj, the weight of digit i (0-based).
// PlaceValue(0) is always 1, and PlaceValue(Len()) equals Product().
func (s System) PlaceValue(i int) int { return s.place[i] }

// Decode returns the digit tuple (n1, …, nL) of value v, least-significant
// digit first, matching the paper's (n1, …, nL) ordering. It reports an
// error if v is outside {0, …, N′−1}.
func (s System) Decode(v int) ([]int, error) {
	if len(s.radices) == 0 {
		return nil, ErrEmpty
	}
	if v < 0 || v >= s.Product() {
		return nil, fmt.Errorf("radix: value %d out of range [0,%d)", v, s.Product())
	}
	digits := make([]int, len(s.radices))
	for i, r := range s.radices {
		digits[i] = v % r
		v /= r
	}
	return digits, nil
}

// Encode is the inverse of Decode: it maps a digit tuple back to its value.
// It reports an error if the tuple has the wrong length or a digit is out of
// range for its radix.
func (s System) Encode(digits []int) (int, error) {
	if len(s.radices) == 0 {
		return 0, ErrEmpty
	}
	if len(digits) != len(s.radices) {
		return 0, fmt.Errorf("radix: got %d digits, system has %d radices", len(digits), len(s.radices))
	}
	v := 0
	for i, d := range digits {
		if d < 0 || d >= s.radices[i] {
			return 0, fmt.Errorf("radix: digit %d at position %d out of range [0,%d)", d, i, s.radices[i])
		}
		v += d * s.place[i]
	}
	return v, nil
}

// Mean returns the arithmetic mean µ of the radices, the quantity that
// drives the density approximation Δ ≈ µ^{−(d−1)} (eq. 5–6 of the paper).
func (s System) Mean() float64 {
	sum := 0
	for _, r := range s.radices {
		sum += r
	}
	return float64(sum) / float64(len(s.radices))
}

// Variance returns the population variance of the radices. The paper's
// density approximations assume this is "sufficiently small".
func (s System) Variance() float64 {
	mu := s.Mean()
	var acc float64
	for _, r := range s.radices {
		d := float64(r) - mu
		acc += d * d
	}
	return acc / float64(len(s.radices))
}

// Equal reports whether two systems have identical radix lists.
func (s System) Equal(t System) bool {
	if len(s.radices) != len(t.radices) {
		return false
	}
	for i, r := range s.radices {
		if r != t.radices[i] {
			return false
		}
	}
	return true
}

// String renders the system in the paper's notation, e.g. "(3,3,4)".
func (s System) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, r := range s.radices {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(r))
	}
	b.WriteByte(')')
	return b.String()
}

// Parse parses the String representation, accepting "(3,3,4)", "3,3,4" and
// surrounding whitespace.
func Parse(text string) (System, error) {
	t := strings.TrimSpace(text)
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	if strings.TrimSpace(t) == "" {
		return System{}, ErrEmpty
	}
	parts := strings.Split(t, ",")
	radices := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return System{}, fmt.Errorf("radix: parsing %q: %w", text, err)
		}
		radices = append(radices, v)
	}
	return New(radices...)
}

// Uniform returns the system (base, base, …, base) with depth digits, i.e.
// the ordinary base-`base` positional system. It is the zero-variance case
// for which the paper's density approximation (6) is exact.
func Uniform(base, depth int) (System, error) {
	if depth < 1 {
		return System{}, ErrEmpty
	}
	radices := make([]int, depth)
	for i := range radices {
		radices[i] = base
	}
	return New(radices...)
}

// Factorize returns a mixed-radix system whose radices multiply to n, built
// greedily from the prime factorization of n (smallest primes first).
// It errors if n < 2. This is a convenience for constructing last-stage
// systems whose product must divide N′.
func Factorize(n int) (System, error) {
	if n < 2 {
		return System{}, fmt.Errorf("radix: cannot factorize %d into radices > 1", n)
	}
	var radices []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			radices = append(radices, p)
			n /= p
		}
	}
	if n > 1 {
		radices = append(radices, n)
	}
	return New(radices...)
}
