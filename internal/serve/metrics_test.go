package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/obs"
)

// promSeries is a parsed Prometheus text exposition: series (full
// "name{labels}" key) → value, plus the declared TYPE per metric name.
type promSeries struct {
	values map[string]float64
	types  map[string]string
	helps  map[string]string
}

// parsePrometheus parses the text exposition format emitted on /metrics.
// It fails the test on any malformed line, so the exposition format itself
// is under test, not just the counter values.
func parsePrometheus(t *testing.T, text string) promSeries {
	t.Helper()
	p := promSeries{
		values: make(map[string]float64),
		types:  make(map[string]string),
		helps:  make(map[string]string),
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed HELP line %q", line)
			}
			p.helps[name] = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("malformed TYPE line %q", line)
			}
			p.types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// An exemplar annotation rides after the value; split it off so
		// the series itself still parses (and the annotation's own shape
		// stays under test via obs.SplitExemplar).
		line, _ = obs.SplitExemplar(line)
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed series line %q", line)
		}
		series, valText := line[:idx], line[idx+1:]
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("series %q: bad value %q: %v", series, valText, err)
		}
		if _, dup := p.values[series]; dup {
			t.Fatalf("duplicate series %q", series)
		}
		p.values[series] = v
	}
	return p
}

func (p promSeries) value(t *testing.T, series string) float64 {
	t.Helper()
	v, ok := p.values[series]
	if !ok {
		t.Fatalf("series %q missing", series)
	}
	return v
}

// TestMetricsExpositionAfterKnownSequence drives a known request sequence
// and asserts the exact counter names and values on /metrics: three
// sequential rows through the batcher (exactly three batches — a
// sequential client blocks on each row, so no coalescing is possible), two
// 2xx GETs and one 404 POST through the HTTP layer.
func TestMetricsExpositionAfterKnownSequence(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, m, ts := newTestServer(t, pol, 1)

	row := make([]float64, m.InputWidth())
	row[1] = 1
	out := make([]float64, m.OutputWidth())
	for i := 0; i < 3; i++ {
		if err := m.Infer(context.Background(), row, out); err != nil {
			t.Fatal(err)
		}
	}
	for _, path := range []string{"/v1/models", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, _ := postInfer(t, ts.URL, InferRequest{Model: "ghost", Inputs: [][]float64{row}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	p := parsePrometheus(t, string(text))

	// Exact per-model counters after the known sequence. The 404 POST never
	// reached the batcher, so only the three direct rows count.
	for series, want := range map[string]float64{
		`radixserve_rows_accepted_total{model="m"}`:  3,
		`radixserve_rows_rejected_total{model="m"}`:  0,
		`radixserve_rows_completed_total{model="m"}`: 3,
		`radixserve_rows_failed_total{model="m"}`:    0,
		`radixserve_batches_total{model="m"}`:        3,
		`radixserve_batched_rows_total{model="m"}`:   3,
		`radixserve_queue_depth{model="m"}`:          0,
		// Capacity sums the per-class bounds (3 default classes × QueueDepth
		// 7) so depth/capacity stays a valid utilization ratio now that
		// depth sums all classes.
		`radixserve_queue_capacity{model="m"}`: 21,
	} {
		if got := p.value(t, series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
	// Latency accumulates over completed rows; exact values vary, but the
	// sum must be positive and the max must not exceed it.
	sum := p.value(t, `radixserve_request_latency_seconds_sum{model="m"}`)
	max := p.value(t, `radixserve_request_latency_seconds_max{model="m"}`)
	if sum <= 0 || max <= 0 || max > sum {
		t.Errorf("latency sum %g / max %g inconsistent", sum, max)
	}

	// HTTP status-class counters: /v1/models + /healthz succeeded, the
	// unknown-model POST 404'd. The /metrics request itself is counted only
	// after its response is written, so it is not in its own exposition.
	for series, want := range map[string]float64{
		`radixserve_http_responses_total{class="2xx"}`: 2,
		`radixserve_http_responses_total{class="4xx"}`: 1,
		`radixserve_http_responses_total{class="5xx"}`: 0,
	} {
		if got := p.value(t, series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
	if up := p.value(t, "radixserve_uptime_seconds"); up <= 0 {
		t.Errorf("uptime %g, want > 0", up)
	}

	// Every exported metric must declare HELP and TYPE, with counters named
	// *_total or *_sum per Prometheus convention.
	for _, name := range []string{
		"radixserve_rows_accepted_total", "radixserve_rows_rejected_total",
		"radixserve_rows_completed_total", "radixserve_rows_failed_total",
		"radixserve_batches_total", "radixserve_batched_rows_total",
		"radixserve_request_latency_seconds", "radixserve_request_latency_seconds_max",
		"radixserve_request_latency_seconds_maxwindow", "radixserve_execute_seconds",
		"radixserve_queue_depth", "radixserve_queue_capacity",
		"radixserve_http_responses_total", "radixserve_uptime_seconds",
	} {
		if p.helps[name] == "" {
			t.Errorf("metric %s has no HELP", name)
		}
		typ, ok := p.types[name]
		if !ok {
			t.Errorf("metric %s has no TYPE", name)
			continue
		}
		isCounter := strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_sum")
		switch {
		case name == "radixserve_request_latency_seconds" || name == "radixserve_execute_seconds":
			if typ != "histogram" {
				t.Errorf("metric %s TYPE %s, want histogram", name, typ)
			}
		case isCounter && typ != "counter":
			t.Errorf("metric %s TYPE %s, want counter", name, typ)
		case !isCounter && typ != "gauge":
			t.Errorf("metric %s TYPE %s, want gauge", name, typ)
		}
	}
}

// TestClassQueueWaitExposition drives rows of two classes and asserts the
// per-class QoS series on /metrics: queue-wait (previously recorded on
// pending.enq but never exported) now appears as
// radixserve_queue_wait_seconds_sum/_max per model×class, alongside the
// per-class row counters and depth gauge, all with HELP/TYPE declared.
func TestClassQueueWaitExposition(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, m, ts := newTestServer(t, pol, 1)

	row := make([]float64, m.InputWidth())
	row[1] = 1
	for i := 0; i < 2; i++ {
		if _, err := m.Do(context.Background(), &Request{Rows: [][]float64{row}, Class: ClassInteractive}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Do(context.Background(), &Request{Rows: [][]float64{row}, Class: ClassBackground}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	p := parsePrometheus(t, string(text))

	for series, want := range map[string]float64{
		`radixserve_class_rows_accepted_total{model="m",class="interactive"}`:  2,
		`radixserve_class_rows_completed_total{model="m",class="interactive"}`: 2,
		`radixserve_class_rows_accepted_total{model="m",class="background"}`:   1,
		`radixserve_class_rows_completed_total{model="m",class="background"}`:  1,
		`radixserve_class_rows_completed_total{model="m",class="batch"}`:       0,
		`radixserve_class_rows_rejected_total{model="m",class="interactive"}`:  0,
		`radixserve_class_rows_expired_total{model="m",class="interactive"}`:   0,
		`radixserve_class_queue_depth{model="m",class="interactive"}`:          0,
	} {
		if got := p.value(t, series); got != want {
			t.Errorf("%s = %g, want %g", series, got, want)
		}
	}
	// Completed rows sat in the queue a nonzero time; max ≤ sum and an idle
	// class exports zero wait.
	for _, class := range []string{"interactive", "background"} {
		sum := p.value(t, fmt.Sprintf("radixserve_queue_wait_seconds_sum{model=%q,class=%q}", "m", class))
		max := p.value(t, fmt.Sprintf("radixserve_queue_wait_seconds_max{model=%q,class=%q}", "m", class))
		if sum <= 0 || max <= 0 || max > sum {
			t.Errorf("class %s queue-wait sum %g / max %g inconsistent", class, sum, max)
		}
	}
	if idle := p.value(t, `radixserve_queue_wait_seconds_sum{model="m",class="batch"}`); idle != 0 {
		t.Errorf("idle class accumulated queue wait %g", idle)
	}
	for _, name := range []string{
		"radixserve_class_rows_accepted_total", "radixserve_class_rows_rejected_total",
		"radixserve_class_rows_completed_total", "radixserve_class_rows_expired_total",
		"radixserve_queue_wait_seconds", "radixserve_queue_wait_seconds_max",
		"radixserve_queue_wait_seconds_maxwindow",
		"radixserve_class_queue_depth", "radixserve_rows_expired_total",
	} {
		if p.helps[name] == "" {
			t.Errorf("metric %s has no HELP", name)
		}
		if _, ok := p.types[name]; !ok {
			t.Errorf("metric %s has no TYPE", name)
		}
	}
}

// TestMetricsRejectionCounters saturates a starved model and asserts the
// rejected/accepted split on /metrics matches the client-observed split.
func TestMetricsRejectionCounters(t *testing.T) {
	pol := Policy{MaxBatch: 2, MaxLatency: time.Millisecond, QueueDepth: 2, Workers: 1}
	_, m, ts := newTestServer(t, pol, 1)
	eng := m.Lease() // starve the worker so the queue can only fill
	row := make([]float64, m.InputWidth())
	row[0] = 1

	var rejected, accepted int
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			out := make([]float64, m.OutputWidth())
			done <- m.Infer(context.Background(), row, out)
		}()
	}
	// The worker holds at most MaxBatch rows and the queue at most
	// QueueDepth, so at least 8−2−2 submissions must be rejected.
	deadline := time.Now().Add(5 * time.Second)
	for m.Metrics().Rejected.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m.Release(eng)
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	if rejected == 0 || accepted == 0 {
		t.Fatalf("split %d ok / %d rejected, want both nonzero", accepted, rejected)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	p := parsePrometheus(t, string(text))
	for series, want := range map[string]float64{
		`radixserve_rows_accepted_total{model="m"}`:  float64(accepted),
		`radixserve_rows_rejected_total{model="m"}`:  float64(rejected),
		`radixserve_rows_completed_total{model="m"}`: float64(accepted),
	} {
		if got := p.value(t, series); got != want {
			t.Errorf("%s = %g, want %g (client split: %d/%d)", series, got, want, accepted, rejected)
		}
	}
	if got := p.value(t, fmt.Sprintf("radixserve_queue_depth{model=%q}", "m")); got != 0 {
		t.Errorf("queue depth %g after drain, want 0", got)
	}
}
