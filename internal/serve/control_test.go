package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/radix"
)

// altConfig returns a config with different interior wiring than
// testConfig but the same 16→16 input/output shape, so it is a legal
// hot-reload target whose outputs differ.
func altConfig(t testing.TB) core.Config {
	t.Helper()
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(2, 8)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestUnregisterDrainsAndRemoves(t *testing.T) {
	reg := NewRegistry(Policy{MaxBatch: 4, MaxLatency: time.Millisecond})
	defer reg.Close()
	cfg := testConfig(t)
	m, err := reg.Register("u", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(1, m.InputWidth(), 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, m.OutputWidth())
	if err := m.Infer(context.Background(), in.RowSlice(0), out); err != nil {
		t.Fatal(err)
	}
	if err := reg.Unregister("u"); err != nil {
		t.Fatal(err)
	}
	if err := m.Infer(context.Background(), in.RowSlice(0), out); !errors.Is(err, ErrClosed) {
		t.Fatalf("Infer after Unregister = %v, want ErrClosed", err)
	}
	if _, ok := reg.Model("u"); ok {
		t.Fatal("model still listed after Unregister")
	}
	if len(reg.List()) != 0 {
		t.Fatalf("List after Unregister = %+v", reg.List())
	}
	if err := reg.Unregister("u"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("double Unregister = %v, want ErrNotRegistered", err)
	}
	// The name is free again.
	if _, err := reg.Register("u", cfg, 1); err != nil {
		t.Fatalf("re-register after Unregister: %v", err)
	}
}

func TestReloadValidation(t *testing.T) {
	reg := NewRegistry(Policy{})
	defer reg.Close()
	cfg := testConfig(t)
	if _, err := reg.Reload("ghost", cfg, 1); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("Reload of unknown model = %v, want ErrNotRegistered", err)
	}
	if _, err := reg.Register("r", cfg, 1); err != nil {
		t.Fatal(err)
	}
	wide, err := core.NewConfig([]radix.System{radix.MustNew(8, 8)}, nil) // 64→64
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Reload("r", wide, 1); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("shape-changing Reload = %v, want ErrIncompatible", err)
	}
	// A malformed config must error like Register does, not panic in the
	// width check.
	if _, err := reg.Reload("r", core.Config{}, 1); err == nil {
		t.Fatal("Reload of an invalid (empty) config accepted")
	}
	if got := mustModel(t, reg, "r").Generation(); got != 1 {
		t.Fatalf("generation after refused reloads = %d, want 1", got)
	}
}

func mustModel(t *testing.T, reg *Registry, name string) *Model {
	t.Helper()
	m, ok := reg.Model(name)
	if !ok {
		t.Fatalf("model %q missing", name)
	}
	return m
}

// TestReloadSwapsWeights proves a reload actually changes what the model
// computes: after swapping in a config with different interior wiring, the
// model's outputs match a reference engine of the NEW config bit for bit.
func TestReloadSwapsWeights(t *testing.T) {
	cfgA, cfgB := testConfig(t), altConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 4, MaxLatency: time.Millisecond})
	defer reg.Close()
	m, err := reg.Register("w", cfgA, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(4, m.InputWidth(), 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantA := referenceOutputs(t, cfgA, in)
	wantB := referenceOutputs(t, cfgB, in)
	check := func(want [][]float64, label string) {
		t.Helper()
		out := make([]float64, m.OutputWidth())
		for r := 0; r < in.Rows(); r++ {
			if err := m.Infer(context.Background(), in.RowSlice(r), out); err != nil {
				t.Fatalf("%s row %d: %v", label, r, err)
			}
			for c, v := range out {
				if v != want[r][c] {
					t.Fatalf("%s row %d col %d: got %v want %v", label, r, c, v, want[r][c])
				}
			}
		}
	}
	check(wantA, "gen1")
	if _, err := reg.Reload("w", cfgB, 3); err != nil {
		t.Fatal(err)
	}
	if m.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", m.Generation())
	}
	if m.Metrics().Reloads.Load() != 1 {
		t.Fatalf("Reloads = %d, want 1", m.Metrics().Reloads.Load())
	}
	if m.Info().Engines != 3 {
		t.Fatalf("engine pool after reload = %d, want 3", m.Info().Engines)
	}
	check(wantB, "gen2")
	// And back, proving repeated swaps stay clean. engines ≤ 0 must keep
	// the current pool size — a weights-only reload must not quietly
	// collapse the pool.
	if _, err := reg.Reload("w", cfgA, 0); err != nil {
		t.Fatal(err)
	}
	if m.Info().Engines != 3 {
		t.Fatalf("engines after size-less reload = %d, want 3 (preserved)", m.Info().Engines)
	}
	check(wantA, "gen3")
}

// TestReloadWaitsForLeasedEngines pins the lease-counting contract: a
// reload must not retire the old generation while one of its engines is
// checked out, and the swap must already be visible to new leases.
func TestReloadWaitsForLeasedEngines(t *testing.T) {
	reg := NewRegistry(Policy{})
	defer reg.Close()
	cfg := testConfig(t)
	m, err := reg.Register("l", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.Lease()
	done := make(chan error, 1)
	go func() {
		_, err := reg.Reload("l", cfg, 1)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("Reload completed with a gen-1 engine still leased (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	// The swap itself must not wait: a fresh lease gets the new generation
	// even while the old one drains.
	e2 := m.Lease()
	if e2 == e1 {
		t.Fatal("lease during reload returned the retiring engine")
	}
	m.Release(e2)
	m.Release(e1)
	if err := <-done; err != nil {
		t.Fatalf("Reload after release: %v", err)
	}
	if m.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", m.Generation())
	}
}

// TestConcurrentInferDuringReload is the hot-swap acceptance test: clients
// hammering Infer across several engine-pool reloads of the same config
// must see zero failures and zero bit divergence.
func TestConcurrentInferDuringReload(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: time.Millisecond})
	defer reg.Close()
	m, err := reg.Register("hot", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 8
	in, err := dataset.SparseBatch(rows, m.InputWidth(), 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, cfg, in)

	const (
		clients = 4
		reloads = 3
	)
	stop := make(chan struct{})
	var inferred, failures atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := make([]float64, m.OutputWidth())
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := i % rows
				if err := m.Infer(context.Background(), in.RowSlice(r), out); err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Errorf("infer: %w", err))
					return
				}
				for col, v := range out {
					if v != want[r][col] {
						failures.Add(1)
						firstErr.CompareAndSwap(nil, fmt.Errorf("row %d col %d diverged mid-reload", r, col))
						return
					}
				}
				inferred.Add(1)
			}
		}(c)
	}
	// Pace the reloads against observed traffic so every swap really does
	// race in-flight inference instead of finishing before the first row.
	waitRows := func(target int64) {
		deadline := time.Now().Add(10 * time.Second)
		for inferred.Load() < target && failures.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
	}
	for i := 0; i < reloads; i++ {
		waitRows(int64((i + 1) * 20))
		if _, err := reg.Reload("hot", cfg, 1+i%3); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	waitRows(int64((reloads + 1) * 20))
	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failures during hot reload (first: %v)", failures.Load(), firstErr.Load())
	}
	if inferred.Load() == 0 {
		t.Fatal("no rows inferred during the reload storm")
	}
	if m.Generation() != 1+reloads {
		t.Fatalf("generation = %d, want %d", m.Generation(), 1+reloads)
	}
}

// TestConcurrentInferDuringUnregister: requests racing an unregister either
// complete normally or fail with ErrClosed — nothing else, and no deadlock.
func TestConcurrentInferDuringUnregister(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: time.Millisecond})
	defer reg.Close()
	m, err := reg.Register("bye", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(4, m.InputWidth(), 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var unexpected atomic.Value
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float64, m.OutputWidth())
			for i := 0; i < 200; i++ {
				err := m.Infer(context.Background(), in.RowSlice(i%in.Rows()), out)
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						unexpected.CompareAndSwap(nil, err)
					}
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := reg.Unregister("bye"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if v := unexpected.Load(); v != nil {
		t.Fatalf("unexpected error racing Unregister: %v", v)
	}
}

// adminDo issues one control-plane request and returns status + body.
func adminDo(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func registerBody(t *testing.T, name string, cfg core.Config, engines int) []byte {
	t.Helper()
	cfgJSON, err := graphio.MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(RegisterRequest{Name: name, Config: cfgJSON, Engines: engines})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestHTTPAdminEndpoints walks the whole control plane over the wire:
// register (201, then 409 on the duplicate), infer against the new model,
// hot-reload (200, generation 2, 404 unknown, 422 shape change), and
// unregister (200, then 404 everywhere).
func TestHTTPAdminEndpoints(t *testing.T) {
	_, _, ts := newTestServer(t, Policy{MaxBatch: 4, MaxLatency: time.Millisecond}, 1)
	cfg := testConfigLocal(t)

	// Register.
	code, body := adminDo(t, http.MethodPost, ts.URL+"/v1/models", registerBody(t, "live", cfg, 2))
	if code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", code, body)
	}
	var info ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "live" || info.Generation != 1 || info.Engines != 2 {
		t.Fatalf("register info = %+v", info)
	}
	if code, body = adminDo(t, http.MethodPost, ts.URL+"/v1/models", registerBody(t, "live", cfg, 1)); code != http.StatusConflict {
		t.Fatalf("duplicate register: status %d: %s", code, body)
	}
	if code, _ = adminDo(t, http.MethodPost, ts.URL+"/v1/models", []byte(`{"name":"x","config":{"systems":[[0]]}}`)); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad config register: status %d", code)
	}
	if code, _ = adminDo(t, http.MethodPost, ts.URL+"/v1/models", []byte(`{broken`)); code != http.StatusBadRequest {
		t.Fatalf("broken JSON register: status %d", code)
	}
	if code, _ = adminDo(t, http.MethodPost, ts.URL+"/v1/models", []byte(`{"config":{"systems":[[4,4]]}}`)); code != http.StatusUnprocessableEntity {
		t.Fatalf("nameless register: status %d", code)
	}

	// The runtime-registered model serves.
	in, err := dataset.SparseBatch(2, info.InputWidth, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, cfg, in)
	resp, ibody := postInfer(t, ts.URL, InferRequest{Model: "live", Inputs: [][]float64{in.RowSlice(0), in.RowSlice(1)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer on registered model: %d: %s", resp.StatusCode, ibody)
	}
	var iresp InferResponse
	if err := json.Unmarshal(ibody, &iresp); err != nil {
		t.Fatal(err)
	}
	for r := range iresp.Outputs {
		for c := range iresp.Outputs[r] {
			if iresp.Outputs[r][c] != want[r][c] {
				t.Fatalf("runtime-registered model diverged at row %d col %d", r, c)
			}
		}
	}

	// Reload.
	code, body = adminDo(t, http.MethodPut, ts.URL+"/v1/models/live", registerBody(t, "", cfg, 1))
	if code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 || info.Engines != 1 {
		t.Fatalf("reload info = %+v", info)
	}
	if code, _ = adminDo(t, http.MethodPut, ts.URL+"/v1/models/ghost", registerBody(t, "", cfg, 1)); code != http.StatusNotFound {
		t.Fatalf("reload unknown: status %d", code)
	}
	wide, err := core.NewConfig([]radix.System{radix.MustNew(8, 8)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ = adminDo(t, http.MethodPut, ts.URL+"/v1/models/live", registerBody(t, "", wide, 1)); code != http.StatusUnprocessableEntity {
		t.Fatalf("shape-changing reload: status %d", code)
	}

	// Generation is visible on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mtext), `radixserve_model_generation{model="live"} 2`) {
		t.Fatalf("metrics missing generation gauge:\n%s", mtext)
	}
	if !strings.Contains(string(mtext), `radixserve_reloads_total{model="live"} 1`) {
		t.Fatalf("metrics missing reloads counter:\n%s", mtext)
	}

	// Unregister.
	if code, body = adminDo(t, http.MethodDelete, ts.URL+"/v1/models/live", nil); code != http.StatusOK {
		t.Fatalf("unregister: status %d: %s", code, body)
	}
	resp, _ = postInfer(t, ts.URL, InferRequest{Model: "live", Inputs: [][]float64{in.RowSlice(0)}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("infer after unregister: status %d", resp.StatusCode)
	}
	if code, _ = adminDo(t, http.MethodDelete, ts.URL+"/v1/models/live", nil); code != http.StatusNotFound {
		t.Fatalf("double unregister: status %d", code)
	}
}

// testConfigLocal mirrors testConfig but avoids colliding with the "m"
// model newTestServer registers (the admin test registers its own names).
func testConfigLocal(t *testing.T) core.Config {
	t.Helper()
	return testConfig(t)
}

// TestHealthzDrainingAfterClose: once the registry closes, /healthz must
// flip to 503 "draining" so cluster probes route around the backend, and
// CheckHealth must report it as unhealthy.
func TestHealthzDrainingAfterClose(t *testing.T) {
	reg := NewRegistry(Policy{})
	if _, err := reg.Register("h", testConfig(t), 1); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, "127.0.0.1:0")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz before close = %d %q", resp.StatusCode, h.Status)
	}

	reg.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz after close = %d %q, want 503 draining", resp.StatusCode, h.Status)
	}
	if _, err := CheckHealth(context.Background(), nil, ts.URL); err == nil {
		t.Fatal("CheckHealth passed a draining backend")
	}
}

// nonFlusher is a ResponseWriter that deliberately lacks Flush.
type nonFlusher struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (n *nonFlusher) Header() http.Header         { return n.header }
func (n *nonFlusher) WriteHeader(code int)        { n.code = code }
func (n *nonFlusher) Write(p []byte) (int, error) { return n.buf.Write(p) }

// TestStatusRecorderForwardsFlush: the status-counting middleware must not
// hide http.Flusher from wrapped handlers — a streaming handler's flushes
// reach the underlying writer, and a non-flushing writer stays a no-op
// instead of panicking.
func TestStatusRecorderForwardsFlush(t *testing.T) {
	s := NewServer(NewRegistry(Policy{}), "127.0.0.1:0")
	flushed := false
	h := s.countStatus(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("middleware hides http.Flusher")
			return
		}
		w.WriteHeader(http.StatusOK)
		f.Flush()
		flushed = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if !flushed || !rec.Flushed {
		t.Fatalf("flush did not reach the underlying writer (handler flushed=%v, recorder flushed=%v)", flushed, rec.Flushed)
	}

	// http.ResponseController reaches it through Unwrap too.
	ctrlOK := false
	h = s.countStatus(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Errorf("ResponseController.Flush: %v", err)
			return
		}
		ctrlOK = true
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if !ctrlOK || !rec.Flushed {
		t.Fatal("ResponseController flush did not reach the underlying writer")
	}

	// A writer without Flush support must not panic.
	h = s.countStatus(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f, ok := w.(http.Flusher); ok {
			f.Flush() // no-op
		}
		w.WriteHeader(http.StatusOK)
	}))
	h.ServeHTTP(&nonFlusher{header: make(http.Header)}, httptest.NewRequest(http.MethodGet, "/", nil))
}
