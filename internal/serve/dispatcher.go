package serve

import (
	"container/heap"
	"sync"
)

// strideScale is the stride numerator: a model's stride is strideScale /
// Policy.Share, so a model with twice the share advances its pass half as
// fast and wins twice the contended slots.
const strideScale = 1 << 20

// dispatcher is the registry-wide engine quota: at most capacity batch
// executions run concurrently across every model. When models contend,
// freed slots are granted by stride scheduling — each model carries a pass
// value advanced by stride = strideScale/share per slot taken, and the
// waiter with the smallest pass wins — so over any contention window each
// model's slot share converges to Share / Σ shares. A model idle while
// others ran rejoins at the current virtual time instead of cashing in its
// stale low pass, so idleness earns no burst credit.
type dispatcher struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	vtime    uint64 // pass of the most recently granted slot
	seq      uint64 // FIFO tie-break for equal passes
	waiters  waiterHeap
}

// dispClient is one model's stride-scheduling state, guarded by the
// dispatcher's mutex.
type dispClient struct {
	pass   uint64
	stride uint64
}

type dispWaiter struct {
	pass uint64
	seq  uint64
	ch   chan struct{}
}

func newDispatcher(capacity int) *dispatcher {
	if capacity < 1 {
		capacity = 1
	}
	return &dispatcher{capacity: capacity}
}

func newDispClient(share int) dispClient {
	if share < 1 {
		share = 1
	}
	if share > strideScale {
		// Uncapped, strideScale/share would truncate to a stride of 0: the
		// model's pass never advances, it wins every contended slot, and
		// every other model starves — the exact failure the stride
		// scheduler exists to prevent. Clamp so stride is always ≥ 1.
		share = strideScale
	}
	return dispClient{stride: strideScale / uint64(share)}
}

// acquire blocks until the model owns one execution slot. Slots must be
// released; the batcher brackets every engine invocation with
// acquire/release, so a slot is never held longer than one batch.
func (d *dispatcher) acquire(c *dispClient) {
	d.mu.Lock()
	if c.pass < d.vtime {
		c.pass = d.vtime
	}
	myPass := c.pass
	c.pass += c.stride
	if d.inUse < d.capacity {
		d.inUse++
		if myPass > d.vtime {
			d.vtime = myPass
		}
		d.mu.Unlock()
		return
	}
	w := &dispWaiter{pass: myPass, seq: d.seq, ch: make(chan struct{})}
	d.seq++
	heap.Push(&d.waiters, w)
	d.mu.Unlock()
	<-w.ch
}

// release frees one slot, handing it to the waiting model with the lowest
// pass when anyone is queued.
func (d *dispatcher) release() {
	d.mu.Lock()
	if d.waiters.Len() > 0 {
		w := heap.Pop(&d.waiters).(*dispWaiter)
		if w.pass > d.vtime {
			d.vtime = w.pass
		}
		close(w.ch) // the slot transfers; inUse is unchanged
	} else {
		d.inUse--
	}
	d.mu.Unlock()
}

// waiterHeap is a min-heap of waiters by (pass, seq).
type waiterHeap []*dispWaiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].pass != h[j].pass {
		return h[i].pass < h[j].pass
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)        { *h = append(*h, x.(*dispWaiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}
