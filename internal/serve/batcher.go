package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/sparse"
)

// Policy bounds one model's micro-batching scheduler. The zero value of any
// field selects its default.
type Policy struct {
	// MaxBatch caps the rows coalesced into one engine invocation.
	// Default 32.
	MaxBatch int
	// MaxLatency is how long the first row of a batch waits for company
	// before the batch executes anyway. It is the knob trading single-row
	// latency for batch density; negative disables waiting (a batch takes
	// only what is already queued), zero selects the default of 2ms.
	MaxLatency time.Duration
	// QueueDepth bounds pending rows; a submission finding the queue full
	// fails with ErrQueueFull instead of queuing unboundedly. Rows already
	// held by collecting workers are outside this bound, so total in-flight
	// rows are at most QueueDepth + Workers×MaxBatch. Default 256.
	QueueDepth int
	// Workers is the number of collector goroutines executing batches
	// concurrently. Default: the model's engine-pool size (so a collector
	// never waits long for an engine lease).
	Workers int
}

// withDefaults fills zero fields; engines is the model's pool size.
func (p Policy) withDefaults(engines int) Policy {
	if p.MaxBatch <= 0 {
		p.MaxBatch = 32
	}
	if p.MaxLatency == 0 {
		p.MaxLatency = 2 * time.Millisecond
	}
	if p.QueueDepth <= 0 {
		p.QueueDepth = 256
	}
	if p.Workers <= 0 {
		p.Workers = engines
	}
	return p
}

var (
	// ErrQueueFull is the backpressure signal: the model's request queue is
	// at QueueDepth. Callers should shed or retry with backoff; the HTTP
	// layer maps it to 429.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrClosed reports a submission to a model that has been unregistered
	// or whose registry has been closed (or is draining for shutdown). The
	// HTTP layer maps it to 503.
	ErrClosed = errors.New("serve: model closed")
)

// pending is one enqueued row: input, destination for the output, and the
// completion signal. The batcher owns it from submit until done is closed.
type pending struct {
	row  []float64 // input, length inW; read-only to the batcher
	out  []float64 // output destination, length outW, written before done
	err  error     // terminal row status, written before done
	done chan struct{}
	enq  time.Time
}

// batcher is one model's dynamic micro-batching scheduler: a bounded queue
// of pending rows drained by Workers collector goroutines.
type batcher struct {
	model *Model
	pol   Policy
	met   *Metrics

	// inflight counts rows between submit and completion; incoming counts
	// rows a multi-row request has announced but not yet submitted. Together
	// they tell a collector whether waiting out the latency budget can
	// possibly gain company: a batch holding every in-flight row dispatches
	// immediately, so closed-loop single clients never pay MaxLatency.
	inflight atomic.Int64
	incoming atomic.Int64

	mu     sync.RWMutex // guards closed and, with it, sends into queue
	closed bool
	queue  chan *pending
	wg     sync.WaitGroup
}

func newBatcher(m *Model, pol Policy) *batcher {
	b := &batcher{model: m, pol: pol, met: &m.met, queue: make(chan *pending, pol.QueueDepth)}
	b.wg.Add(pol.Workers)
	for i := 0; i < pol.Workers; i++ {
		go b.worker()
	}
	return b
}

// submit enqueues one row without blocking: ErrQueueFull when the queue is
// at capacity, ErrClosed after close. The read-lock excludes the
// close()-side channel close, so sends never race it.
func (b *batcher) submit(p *pending) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		// Shutdown, not backpressure: keep the Rejected (queue-full) series
		// clean for operators alerting on it.
		b.met.Failed.Add(1)
		return ErrClosed
	}
	// Count the row in flight before it becomes visible in the queue, so a
	// collector that receives it never observes inflight < rows it holds.
	b.inflight.Add(1)
	select {
	case b.queue <- p:
		b.met.Accepted.Add(1)
		return nil
	default:
		b.inflight.Add(-1)
		b.met.Rejected.Add(1)
		return ErrQueueFull
	}
}

// close rejects future submissions, then drains: rows already accepted are
// still executed (on whatever engine generation is current when their batch
// leases) before the workers exit. Blocks until the drain completes. Called
// by Registry.Unregister and Registry.Close; idempotent.
func (b *batcher) close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		close(b.queue)
	}
	b.wg.Wait()
}

// worker is one collector loop: block for the first row of a batch, drain
// greedily, wait out the latency budget if the batch is still short, then
// execute. Exits when the queue is closed and empty.
func (b *batcher) worker() {
	defer b.wg.Done()
	reqs := make([]*pending, 0, b.pol.MaxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		p, ok := <-b.queue
		if !ok {
			return
		}
		reqs = append(reqs[:0], p)
		open := b.drain(&reqs)
		if open && len(reqs) < b.pol.MaxBatch && b.pol.MaxLatency > 0 {
			wait := b.pol.MaxLatency
			if !b.companyPossible(len(reqs)) {
				// Single-client fast path: the batch already holds every row
				// the system knows about, so the full latency budget cannot
				// buy company. A zero wait would be wrong too — concurrent
				// clients' first rows arrive staggered by scheduler
				// microseconds and would each execute alone — so wait one
				// short grace window instead of the budget.
				if wait > fastPathGrace {
					wait = fastPathGrace
				}
			}
			timer.Reset(wait)
		wait:
			for len(reqs) < b.pol.MaxBatch {
				select {
				case q, ok := <-b.queue:
					if !ok {
						break wait
					}
					reqs = append(reqs, q)
				case <-timer.C:
					break wait
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		b.execute(reqs)
	}
}

// fastPathGrace is the collection window a collector uses in place of the
// full MaxLatency budget when the batch already holds every known
// in-flight row: long enough for a concurrent client staggered by
// scheduler jitter to get its row queued, short enough that a closed-loop
// single client pays microseconds per row instead of the 2ms default
// budget (the regression the fast path exists to fix).
const fastPathGrace = 200 * time.Microsecond

// companyPossible reports whether a collector holding held rows has any
// reason to wait out the full latency budget: rows in flight beyond its
// own batch (concurrent clients whose rows are queued or executing
// elsewhere and who may resubmit) or rows a multi-row request has
// announced but not yet submitted. When the batch already holds every row
// the system knows about — the closed-loop single-client case — the
// budget cannot buy company and the collector waits only fastPathGrace.
// This is a heuristic: a false "possible" still bounds latency by
// MaxLatency, exactly the pre-fast-path behavior.
func (b *batcher) companyPossible(held int) bool {
	return b.inflight.Load()+b.incoming.Load() > int64(held)
}

// drain moves whatever is already queued into reqs, up to MaxBatch, without
// blocking. Returns false once the queue is closed.
func (b *batcher) drain(reqs *[]*pending) bool {
	for len(*reqs) < b.pol.MaxBatch {
		select {
		case q, ok := <-b.queue:
			if !ok {
				return false
			}
			*reqs = append(*reqs, q)
		default:
			return true
		}
	}
	return true
}

// execute leases an engine, runs one fused forward pass over the coalesced
// batch, copies each row's output into its pending slot, and completes
// every request. Output rows are copied out of the engine's ping-pong view
// before the engine is released, so the view is never read after the next
// lease-holder overwrites it.
func (b *batcher) execute(reqs []*pending) {
	m := b.model
	n := len(reqs)
	buf := m.batchBuf()
	for i, p := range reqs {
		copy(buf[i*m.inW:(i+1)*m.inW], p.row)
	}
	batch, err := sparse.DenseFromSlice(n, m.inW, buf[:n*m.inW])
	if err == nil {
		eng := m.Lease()
		var out *sparse.Dense
		if out, err = eng.Infer(batch); err == nil {
			data := out.Data()
			for i, p := range reqs {
				copy(p.out, data[i*m.outW:(i+1)*m.outW])
			}
		}
		m.Release(eng)
	}
	m.putBatchBuf(buf)
	b.met.Batches.Add(1)
	b.met.BatchedRows.Add(int64(n))
	now := time.Now()
	for _, p := range reqs {
		p.err = err
		if err != nil {
			b.met.Failed.Add(1)
		} else {
			b.met.Completed.Add(1)
			b.met.observe(now.Sub(p.enq).Nanoseconds())
		}
		close(p.done)
	}
	b.inflight.Add(-int64(n))
}
