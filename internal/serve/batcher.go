package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/sparse"
)

// Policy bounds one model's micro-batching scheduler. The zero value of any
// field selects its default.
type Policy struct {
	// MaxBatch caps the rows coalesced into one engine invocation.
	// Default 32.
	MaxBatch int
	// MaxLatency is how long the first row of a batch waits for company
	// before the batch executes anyway. It is the knob trading single-row
	// latency for batch density; negative disables waiting (a batch takes
	// only what is already queued), zero selects the default of 2ms.
	MaxLatency time.Duration
	// QueueDepth bounds pending rows PER CLASS; a submission finding its
	// class's queue full fails with ErrQueueFull instead of queuing
	// unboundedly, and a flood in one class can never crowd another class
	// out of queue space. Rows already held by collecting workers are
	// outside this bound, so total in-flight rows are at most
	// classes×QueueDepth + Workers×MaxBatch. Default 256.
	QueueDepth int
	// Workers is the number of collector goroutines executing batches
	// concurrently. Default: the model's engine-pool size (so a collector
	// never waits long for an engine lease).
	Workers int
	// Share is the model's weight when models contend for the registry's
	// engine quota (QoSConfig.ExecSlots): contended execution slots are
	// granted in Share proportion. Default 1.
	Share int
}

// withDefaults fills zero fields; engines is the model's pool size.
func (p Policy) withDefaults(engines int) Policy {
	if p.MaxBatch <= 0 {
		p.MaxBatch = 32
	}
	if p.MaxLatency == 0 {
		p.MaxLatency = 2 * time.Millisecond
	}
	if p.QueueDepth <= 0 {
		p.QueueDepth = 256
	}
	if p.Workers <= 0 {
		p.Workers = engines
	}
	if p.Share <= 0 {
		p.Share = 1
	}
	return p
}

var (
	// ErrQueueFull is the backpressure signal: the request's class queue is
	// at QueueDepth. Callers should shed or retry with backoff; the HTTP
	// layer maps it to 429 with a Retry-After derived from the queue's
	// drain rate.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrClosed reports a submission to a model that has been unregistered
	// or whose registry has been closed (or is draining for shutdown). The
	// HTTP layer maps it to 503.
	ErrClosed = errors.New("serve: model closed")
)

// pending is one enqueued row: input, destination for the output, QoS
// metadata, and the completion signal. The batcher owns it from submit
// until done is closed.
type pending struct {
	row      []float64 // input, length inW; read-only to the batcher
	out      []float64 // output destination, length outW, written before done
	err      error     // terminal row status, written before done
	done     chan struct{}
	enq      time.Time
	class    int           // class id in the registry's qosSet
	deadline time.Time     // zero = none; checked at dequeue
	trace    string        // request trace ID, stamped on histogram exemplars
	wait     time.Duration // enqueue → engine dispatch, set before done
	exec     time.Duration // engine invocation elapsed, set before done

	// Span timings for request tracing, set before done: deq is when the
	// row left its class queue (span "queue" = deq−enq), assemble is
	// dequeue→batch-dispatch (company collection), lease is the engine
	// lease acquisition wait, deliver is post-engine completion fan-out.
	deq      time.Time
	assemble time.Duration
	lease    time.Duration
	deliver  time.Duration
}

// batcher is one model's QoS scheduler: per-class bounded queues drained by
// Workers collector goroutines running deficit round-robin across classes.
type batcher struct {
	model *Model
	pol   Policy
	met   *Metrics
	qos   *qosSet
	disp  *dispatcher // registry engine quota; nil when disabled

	// inflight counts rows between submit and completion; incoming counts
	// rows a multi-row request has announced but not yet submitted. Together
	// they tell a collector whether waiting out the latency budget can
	// possibly gain company: a batch holding every in-flight row dispatches
	// immediately, so closed-loop single clients never pay MaxLatency.
	inflight atomic.Int64
	incoming atomic.Int64

	// classWait holds one EWMA per QoS class of the pure queue delay
	// (dequeue − enqueue, nanoseconds) — the time rows actually spend
	// waiting for a collector, NOT the enqueue→dispatch wait, which
	// includes the deliberate collection window and would feed the window
	// back into itself (positive feedback driving it permanently to
	// MaxLatency). The collectors' adaptive collection window derives from
	// the max across classes: idle models converge to the fast-path grace,
	// saturated ones to the full MaxLatency budget.
	classWait []atomic.Int64

	mu     sync.Mutex // guards closed and sched
	closed bool
	sched  *classSched

	// fullErr holds one pre-wrapped ErrQueueFull per class, built at
	// construction so the submit hot path rejects without formatting.
	fullErr []error

	notify chan struct{} // capacity 1; pinged whenever queued work may exist
	done   chan struct{} // closed by close()
	wg     sync.WaitGroup
}

func newBatcher(m *Model, pol Policy, qos *qosSet, disp *dispatcher) *batcher {
	b := &batcher{
		model:  m,
		pol:    pol,
		met:    &m.met,
		qos:    qos,
		disp:   disp,
		sched:  newClassSched(qos, pol.QueueDepth),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	b.fullErr = make([]error, qos.size())
	for c := range b.fullErr {
		b.fullErr[c] = fmt.Errorf("%w (class %q)", ErrQueueFull, qos.name(c))
	}
	b.classWait = make([]atomic.Int64, qos.size())
	b.wg.Add(pol.Workers)
	for i := 0; i < pol.Workers; i++ {
		go b.worker()
	}
	return b
}

// ping wakes one sleeping collector. The buffered channel keeps the wakeup
// even when no collector is in its select yet, so submit→sleep races never
// lose a signal; a collector that takes a batch and leaves rows behind
// re-pings so its peers pick up the rest.
func (b *batcher) ping() {
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// submit enqueues one row without blocking: ErrQueueFull when the row's
// class queue is at capacity, ErrClosed after close. Rejections return the
// class's pre-wrapped error so the full-queue path never formats.
//
//radix:hotpath
func (b *batcher) submit(p *pending) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		// Shutdown, not backpressure: keep the Rejected (queue-full) series
		// clean for operators alerting on it.
		b.met.Failed.Add(1)
		return ErrClosed
	}
	// Count the row in flight before it becomes visible to collectors, so a
	// collector never observes inflight < rows it holds.
	b.inflight.Add(1)
	if err := b.sched.enqueue(p); err != nil {
		b.mu.Unlock()
		b.inflight.Add(-1)
		b.met.Rejected.Add(1)
		b.met.class(p.class).Rejected.Add(1)
		return b.fullErr[p.class]
	}
	b.mu.Unlock()
	b.met.Accepted.Add(1)
	b.met.class(p.class).Accepted.Add(1)
	b.ping()
	return nil
}

// close rejects future submissions, then drains: rows already accepted are
// still executed (on whatever engine generation is current when their batch
// leases) before the workers exit, except rows whose deadline has already
// passed, which are shed as usual. Blocks until the drain completes. Called
// by Registry.Unregister and Registry.Close; idempotent.
func (b *batcher) close() {
	b.mu.Lock()
	already := b.closed
	b.closed = true
	b.mu.Unlock()
	if !already {
		close(b.done)
	}
	b.wg.Wait()
}

// depth reports the rows currently queued (all classes).
func (b *batcher) depth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sched.pending
}

// classDepth reports one class's queued rows.
func (b *batcher) classDepth(class int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sched.depth(class)
}

// classBacklog reports, under one lock, a class's queued rows and its DRR
// share of the dispatch stream right now: weight over the summed weights
// of every currently backlogged class (1.0 when it would be the only
// backlogged class). The Retry-After estimate uses it — a low-weight class
// drains at its share of the engine rate, not the whole rate.
func (b *batcher) classBacklog(class int) (depth int, share float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	depth = b.sched.depth(class)
	weights := 0
	for i := range b.sched.classes {
		if i == class || b.sched.classes[i].n > 0 {
			weights += b.sched.classes[i].weight
		}
	}
	return depth, float64(b.sched.classes[class].weight) / float64(weights)
}

// worker is one collector loop: take a weighted-fair batch, wait out the
// latency budget if the batch is still short, then execute. Exits when the
// batcher is closed and every queue is empty.
func (b *batcher) worker() {
	defer b.wg.Done()
	reqs := make([]*pending, 0, b.pol.MaxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var shed []*pending
		b.mu.Lock()
		reqs, shed = b.sched.take(reqs[:0], b.pol.MaxBatch, time.Now())
		left := b.sched.pending
		closed := b.closed
		b.mu.Unlock()
		b.expire(shed)
		if left > 0 {
			b.ping() // more work than one batch: wake a peer
		}
		if len(reqs) == 0 {
			if closed {
				if left == 0 {
					return
				}
				continue // shed-only take; keep draining
			}
			select {
			case <-b.notify:
			case <-b.done:
			}
			continue
		}
		if !closed && len(reqs) < b.pol.MaxBatch && b.pol.MaxLatency > 0 {
			wait := b.collectWindow()
			if !b.companyPossible(len(reqs)) {
				// Single-client fast path: the batch already holds every row
				// the system knows about, so the full latency budget cannot
				// buy company. A zero wait would be wrong too — concurrent
				// clients' first rows arrive staggered by scheduler
				// microseconds and would each execute alone — so wait one
				// short grace window instead of the budget.
				if wait > fastPathGrace {
					wait = fastPathGrace
				}
			}
			timer.Reset(wait)
		collect:
			for len(reqs) < b.pol.MaxBatch {
				select {
				case <-b.notify:
					b.mu.Lock()
					reqs, shed = b.sched.take(reqs, b.pol.MaxBatch, time.Now())
					left = b.sched.pending
					b.mu.Unlock()
					b.expire(shed)
					if left > 0 {
						b.ping()
					}
				case <-timer.C:
					break collect
				case <-b.done:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		b.execute(reqs)
	}
}

// fastPathGrace is the collection window a collector uses in place of the
// full MaxLatency budget when the batch already holds every known
// in-flight row: long enough for a concurrent client staggered by
// scheduler jitter to get its row queued, short enough that a closed-loop
// single client pays microseconds per row instead of the 2ms default
// budget (the regression the fast path exists to fix).
const fastPathGrace = 200 * time.Microsecond

// waitEWMAShift is the smoothing of the per-class queue-delay EWMA:
// new = old + (sample−old)/2^3, i.e. a ~8-batch memory — long enough to
// ride out one anomalous batch, short enough that a load shift retunes
// the collection window within a few batches.
const waitEWMAShift = 3

// noteQueueDelay folds one row's measured queue delay into its class's
// EWMA. Racing updates may lose an increment; the EWMA is a tuning
// signal, not an accounting counter, and stays within the clamp bounds
// regardless.
func (b *batcher) noteQueueDelay(class int, delay time.Duration) {
	ew := &b.classWait[class]
	old := ew.Load()
	ew.Store(old + (delay.Nanoseconds()-old)>>waitEWMAShift)
}

// collectWindow is the adaptive collection budget: twice the worst
// per-class queue-delay EWMA, clamped to [fastPathGrace, MaxLatency].
// Under light load rows barely queue, the EWMA sits near zero, and short
// batches dispatch after only the grace window — single-row latency wins.
// Under saturation queue delay dwarfs the budget and the window opens to
// the full MaxLatency — batch density wins exactly when it pays. The
// clamp's upper bound is the configured MaxLatency, so the adaptive
// window never makes any request wait longer than the static policy did.
//
//radix:hotpath
func (b *batcher) collectWindow() time.Duration {
	var worst int64
	for c := range b.classWait {
		if v := b.classWait[c].Load(); v > worst {
			worst = v
		}
	}
	w := time.Duration(2 * worst)
	if w < fastPathGrace {
		return fastPathGrace
	}
	if w > b.pol.MaxLatency {
		return b.pol.MaxLatency
	}
	return w
}

// companyPossible reports whether a collector holding held rows has any
// reason to wait out the full latency budget: rows in flight beyond its
// own batch (concurrent clients whose rows are queued or executing
// elsewhere and who may resubmit) or rows a multi-row request has
// announced but not yet submitted. When the batch already holds every row
// the system knows about — the closed-loop single-client case — the
// budget cannot buy company and the collector waits only fastPathGrace.
// This is a heuristic: a false "possible" still bounds latency by
// MaxLatency, exactly the pre-fast-path behavior.
func (b *batcher) companyPossible(held int) bool {
	return b.inflight.Load()+b.incoming.Load() > int64(held)
}

// expire completes rows shed at dequeue for a passed deadline: never
// executed, failed with ErrDeadlineExceeded, counted per class.
//
//radix:hotpath
func (b *batcher) expire(shed []*pending) {
	if len(shed) == 0 {
		return
	}
	for _, p := range shed {
		p.err = ErrDeadlineExceeded
		b.met.Expired.Add(1)
		b.met.class(p.class).Expired.Add(1)
		close(p.done)
	}
	b.inflight.Add(-int64(len(shed)))
}

// execute leases an engine (bounded by the registry's cross-model engine
// quota when one is configured), runs one fused forward pass over the
// coalesced batch, copies each row's output into its pending slot, and
// completes every request. Output rows are copied out of the engine's
// ping-pong view before the engine is released, so the view is never read
// after the next lease-holder overwrites it. Clock reads and the quota
// defer are per batch, not per row, hence the allowances.
//
//radix:hotpath allow=time,defer
func (b *batcher) execute(reqs []*pending) {
	m := b.model
	n := len(reqs)
	if b.disp != nil {
		b.disp.acquire(&m.dispC)
		defer b.disp.release()
	}
	bufp := m.batchBuf()
	buf := *bufp
	for i, p := range reqs {
		copy(buf[i*m.inW:(i+1)*m.inW], p.row)
	}
	dispatch := time.Now()
	for _, p := range reqs {
		p.wait = dispatch.Sub(p.enq)
		if !p.deq.IsZero() {
			p.assemble = dispatch.Sub(p.deq)
			b.noteQueueDelay(p.class, p.deq.Sub(p.enq))
		}
	}
	var execDur, leaseDur time.Duration
	var execEnd time.Time
	batch, err := sparse.DenseFromSlice(n, m.inW, buf[:n*m.inW])
	if err == nil {
		leaseStart := time.Now()
		eng := m.Lease()
		execStart := time.Now()
		leaseDur = execStart.Sub(leaseStart)
		var out *sparse.Dense
		if out, err = eng.Infer(batch); err == nil {
			data := out.Data()
			for i, p := range reqs {
				copy(p.out, data[i*m.outW:(i+1)*m.outW])
			}
		}
		execDur = time.Since(execStart)
		execEnd = execStart.Add(execDur)
		m.Release(eng)
	}
	m.putBatchBuf(bufp)
	b.met.Batches.Add(1)
	b.met.BatchedRows.Add(int64(n))
	b.met.ExecNs.Add(execDur.Nanoseconds())
	b.met.ExecHist.Observe(execDur.Nanoseconds())
	b.met.BatchHist.Observe(int64(n))
	now := time.Now()
	var deliverDur time.Duration
	if !execEnd.IsZero() {
		deliverDur = now.Sub(execEnd)
	}
	for _, p := range reqs {
		p.err = err
		p.exec = execDur
		p.lease = leaseDur
		p.deliver = deliverDur
		if err != nil {
			b.met.Failed.Add(1)
		} else {
			b.met.Completed.Add(1)
			lat := now.Sub(p.enq).Nanoseconds()
			b.met.observe(lat, p.trace)
			cm := b.met.class(p.class)
			cm.Completed.Add(1)
			cm.LatencyHist.ObserveTraced(lat, p.trace)
			cm.observeWait(p.wait.Nanoseconds(), p.trace)
		}
		close(p.done)
	}
	b.inflight.Add(-int64(n))
}
