package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/obs"
)

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(text)
}

// TestHistogramExposition drives known rows and asserts the histogram
// families on /metrics parse back with exact counts and the shared log2
// bucket ladder — the contract the router's bucket-wise merge and the
// selftests' p99 assertions both depend on.
func TestHistogramExposition(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, m, ts := newTestServer(t, pol, 1)

	row := make([]float64, m.InputWidth())
	row[1] = 1
	const rows = 5
	for i := 0; i < rows; i++ {
		if _, err := m.Do(context.Background(), &Request{Rows: [][]float64{row}, Class: ClassInteractive}); err != nil {
			t.Fatal(err)
		}
	}
	text := scrapeMetrics(t, ts.URL)

	lat, ok := obs.ParseHistogram(text, "radixserve_request_latency_seconds", map[string]string{"model": "m"})
	if !ok {
		t.Fatalf("latency histogram missing from exposition:\n%s", text)
	}
	if lat.Count != rows {
		t.Fatalf("latency count = %d, want %d", lat.Count, rows)
	}
	// Exact ladder: first emitted bound is 2^12ns, last is 2^34ns, and the
	// cumulative counts are monotone ending at Count.
	if len(lat.Les) == 0 || lat.Les[0] != 4.096e-06 {
		t.Fatalf("first le = %v, want 4.096e-06", lat.Les)
	}
	if last := lat.Les[len(lat.Les)-1]; last != float64(int64(1)<<34)/1e9 {
		t.Fatalf("last le = %g, want %g", last, float64(int64(1)<<34)/1e9)
	}
	prev := uint64(0)
	for i, c := range lat.Cum {
		if c < prev {
			t.Fatalf("non-monotone bucket counts at %d", i)
		}
		prev = c
	}
	if prev != lat.Count {
		t.Fatalf("final cumulative %d != count %d", prev, lat.Count)
	}
	if p99 := lat.Quantile(0.99); p99 <= 0 || p99 > 10 {
		t.Fatalf("latency p99 = %gs, implausible", p99)
	}

	wait, ok := obs.ParseHistogram(text, "radixserve_queue_wait_seconds",
		map[string]string{"model": "m", "class": "interactive"})
	if !ok || wait.Count != rows {
		t.Fatalf("interactive queue-wait histogram: ok=%v count=%d, want %d", ok, wait.Count, rows)
	}
	if idle, ok := obs.ParseHistogram(text, "radixserve_queue_wait_seconds",
		map[string]string{"model": "m", "class": "batch"}); !ok || idle.Count != 0 {
		t.Fatalf("idle class histogram: ok=%v count=%d, want present and 0", ok, idle.Count)
	}
	if ex, ok := obs.ParseHistogram(text, "radixserve_execute_seconds", map[string]string{"model": "m"}); !ok || ex.Count == 0 {
		t.Fatalf("execute histogram: ok=%v count=%d, want > 0", ok, ex.Count)
	}
}

// TestWindowedMaxResetsOnScrape asserts the maxwindow gauge forgets an
// old peak after scrapes while the all-time max keeps it — the
// MetricsSnapshot staleness fix.
func TestWindowedMaxResetsOnScrape(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, m, ts := newTestServer(t, pol, 1)
	row := make([]float64, m.InputWidth())
	out := make([]float64, m.OutputWidth())
	if err := m.Infer(context.Background(), row, out); err != nil {
		t.Fatal(err)
	}
	series := `radixserve_request_latency_seconds_maxwindow{model="m"}`
	p := parsePrometheus(t, scrapeMetrics(t, ts.URL))
	if v := p.value(t, series); v <= 0 {
		t.Fatalf("maxwindow = %g right after traffic, want > 0", v)
	}
	// Each scrape rotates the window; after two idle scrapes the peak has
	// aged out of both retained windows.
	scrapeMetrics(t, ts.URL)
	p = parsePrometheus(t, scrapeMetrics(t, ts.URL))
	if v := p.value(t, series); v != 0 {
		t.Fatalf("maxwindow = %g after idle scrapes, want 0", v)
	}
	if v := p.value(t, `radixserve_request_latency_seconds_max{model="m"}`); v <= 0 {
		t.Fatalf("all-time max lost: %g", v)
	}
	snap := m.Metrics().Snapshot()
	if snap.MaxLatency <= 0 {
		t.Fatalf("snapshot all-time max = %v", snap.MaxLatency)
	}
}

// TestRetryAfterFromWaitHistogram is the regression test for the 429 hint:
// once the class has enough samples, the hint must come from the queue-wait
// p90 and stay within a deadline-scale budget rather than ballooning to the
// old depth-based estimate, and it must respect the [1,30]s clamp.
func TestRetryAfterFromWaitHistogram(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, m, _ := newTestServer(t, pol, 1)
	id, err := m.qos.id(ClassInteractive)
	if err != nil {
		t.Fatal(err)
	}
	cm := m.met.class(id)

	// Below the sample floor the cold fallback answers (≥ 1s, clamped).
	if got := m.RetryAfterSeconds(ClassInteractive); got < 1 || got > 30 {
		t.Fatalf("cold hint = %d, want within [1,30]", got)
	}
	// Waits all well under a 2s deadline budget → hint must be the 1s
	// floor, comfortably inside the budget.
	for i := 0; i < 100; i++ {
		cm.WaitHist.Observe(int64(5 * time.Millisecond))
	}
	if got := m.RetryAfterSeconds(ClassInteractive); got != 1 {
		t.Fatalf("hint after 5ms waits = %ds, want 1 (within deadline budget)", got)
	}
	// Pathological waits clamp at 30s.
	for i := 0; i < 1000; i++ {
		cm.WaitHist.Observe(int64(120 * time.Second))
	}
	if got := m.RetryAfterSeconds(ClassInteractive); got != 30 {
		t.Fatalf("hint after 120s waits = %ds, want 30 (clamp)", got)
	}
}

// TestResponseTraceAndSpans asserts Do returns a trace ID and the five
// scheduler spans with plausible timings.
func TestResponseTraceAndSpans(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, m, _ := newTestServer(t, pol, 1)
	row := make([]float64, m.InputWidth())
	resp, err := m.Do(context.Background(), &Request{Rows: [][]float64{row}, TraceID: "cafe0000"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "cafe0000" {
		t.Fatalf("trace id = %q, want echo of caller's", resp.TraceID)
	}
	want := []string{"queue", "assemble", "lease", "execute", "deliver"}
	if len(resp.Spans) != len(want) {
		t.Fatalf("spans = %d, want %d: %+v", len(resp.Spans), len(want), resp.Spans)
	}
	var exec float64
	for i, s := range resp.Spans {
		if s.Name != want[i] {
			t.Fatalf("span %d = %q, want %q", i, s.Name, want[i])
		}
		if s.DurMs < 0 {
			t.Fatalf("span %q negative: %v", s.Name, s.DurMs)
		}
		if s.Name == "execute" {
			exec = s.DurMs
		}
	}
	if exec <= 0 {
		t.Fatalf("execute span = %v, want > 0", exec)
	}
	// Without a caller ID, Do assigns one.
	resp, err = m.Do(context.Background(), &Request{Rows: [][]float64{row}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.TraceID) != 32 {
		t.Fatalf("generated trace id = %q", resp.TraceID)
	}
}

// TestHTTPTraceEndToEnd exercises the trace surface over HTTP: the
// response and header echo a caller-supplied trace ID, the response spans
// include admission plus the five scheduler stages, the request shows up
// in /debug/traces, and a slow-threshold server logs the breakdown.
func TestHTTPTraceEndToEnd(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	cfg := testConfig(t)
	reg := NewRegistry(pol)
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf syncBuffer
	srv := NewServerOpts(reg, "127.0.0.1:0", ServerOptions{
		Pprof:       true,
		SlowRequest: time.Nanosecond, // everything is slow: force the log path
		TraceDepth:  16,
		Logger:      slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); reg.Close() })

	row := make([]float64, m.InputWidth())
	body, _ := json.Marshal(InferRequest{Model: "m", Inputs: [][]float64{row}})
	hreq, _ := http.NewRequest("POST", ts.URL+"/v1/infer", bytes.NewReader(body))
	hreq.Header.Set(obs.HeaderTraceID, "feedface00000000feedface00000000")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", hresp.StatusCode, raw)
	}
	if got := hresp.Header.Get(obs.HeaderTraceID); got != "feedface00000000feedface00000000" {
		t.Fatalf("trace header = %q", got)
	}
	var ir InferResponse
	if err := json.Unmarshal(raw, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.TraceID != "feedface00000000feedface00000000" {
		t.Fatalf("body trace id = %q", ir.TraceID)
	}
	wantSpans := []string{"admission", "queue", "assemble", "lease", "execute", "deliver"}
	if len(ir.Spans) != len(wantSpans) {
		t.Fatalf("spans = %+v, want %v", ir.Spans, wantSpans)
	}
	for i, sp := range ir.Spans {
		if sp.Name != wantSpans[i] {
			t.Fatalf("span %d = %q, want %q", i, sp.Name, wantSpans[i])
		}
	}

	// The request is browsable in the ring.
	dresp, err := http.Get(ts.URL + "/debug/traces?n=4")
	if err != nil {
		t.Fatal(err)
	}
	draw, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	var view struct {
		Total   uint64       `json:"total"`
		Recent  []*obs.Trace `json:"recent"`
		Slowest []*obs.Trace `json:"slowest"`
	}
	if err := json.Unmarshal(draw, &view); err != nil {
		t.Fatalf("bad /debug/traces json: %v\n%s", err, draw)
	}
	if view.Total == 0 || len(view.Recent) == 0 {
		t.Fatalf("trace ring empty: %s", draw)
	}
	if view.Recent[0].ID != ir.TraceID || view.Recent[0].Status != http.StatusOK {
		t.Fatalf("ring head = %+v", view.Recent[0])
	}

	// Slow log fired with trace correlation.
	if logged := logBuf.String(); !strings.Contains(logged, "slow request") ||
		!strings.Contains(logged, ir.TraceID) || !strings.Contains(logged, "execute=") {
		t.Fatalf("slow log missing fields:\n%s", logged)
	}

	// pprof mounted (opt-in was set).
	presp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", presp.StatusCode)
	}

	// pprof NOT mounted on a default server.
	plain := NewServer(reg, "127.0.0.1:0")
	ts2 := httptest.NewServer(plain.Handler())
	defer ts2.Close()
	p2, err := http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	p2.Body.Close()
	if p2.StatusCode == http.StatusOK {
		t.Fatal("pprof exposed without opt-in")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for concurrent slog writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
