package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/obs/slo"
)

// TestMetricsScrapeRacingScrapers is the regression test for racing
// /metrics scrapes: rendering rotates the windowed-max gauges, so two
// concurrent scrapers must be serialized — a single observed peak is
// reported by exactly two scrapes (current window, then the retained
// previous one) and by no more, with no torn or duplicated windows.
func TestMetricsScrapeRacingScrapers(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, m, ts := newTestServer(t, pol, 1)
	m.Metrics().WinLatency.Observe(int64(123 * time.Millisecond))

	const scrapers = 8
	results := make([]string, scrapers)
	var wg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = scrapeMetrics(t, ts.URL)
		}(i)
	}
	wg.Wait()

	series := `radixserve_request_latency_seconds_maxwindow{model="m"}`
	seen := 0
	for _, text := range results {
		if v := parsePrometheus(t, text).value(t, series); v > 0 {
			if v != 0.123 {
				t.Fatalf("maxwindow = %g, want 0.123 (torn window?)", v)
			}
			seen++
		}
	}
	if seen != 2 {
		t.Fatalf("peak visible in %d of %d racing scrapes, want exactly 2 (cur + prev window)", seen, scrapers)
	}
}

// TestInferResponseSpansHeader pins the serve half of trace stitching:
// every 200 carries the span breakdown in X-Radix-Spans, in the compact
// codec the router grafts from.
func TestInferResponseSpansHeader(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, m, ts := newTestServer(t, pol, 1)
	row := make([]float64, m.InputWidth())
	resp, _ := postInfer(t, ts.URL, InferRequest{Model: "m", Inputs: [][]float64{row}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	enc := resp.Header.Get(obs.HeaderSpans)
	if enc == "" {
		t.Fatalf("no %s header on a 200", obs.HeaderSpans)
	}
	spans, err := obs.DecodeSpans(enc)
	if err != nil {
		t.Fatalf("DecodeSpans(%q): %v", enc, err)
	}
	names := make(map[string]bool, len(spans))
	for _, s := range spans {
		names[s.Name] = true
	}
	for _, want := range []string{"queue", "execute"} {
		if !names[want] {
			t.Fatalf("span %q missing from header %q", want, enc)
		}
	}
}

// TestExemplarResolvesToTrace drives one request and follows the full
// exemplar jump: response trace ID → bucket annotation on /metrics →
// /debug/traces?trace=<id> → the stitched trace.
func TestExemplarResolvesToTrace(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, m, ts := newTestServer(t, pol, 1)
	row := make([]float64, m.InputWidth())
	resp, body := postInfer(t, ts.URL, InferRequest{Model: "m", Inputs: [][]float64{row}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.TraceID) != 32 {
		t.Fatalf("trace ID %q", ir.TraceID)
	}

	text := scrapeMetrics(t, ts.URL)
	found := false
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, `radixserve_request_latency_seconds_bucket{model="m"`) {
			continue
		}
		if _, exemplar := obs.SplitExemplar(line); strings.Contains(exemplar, ir.TraceID) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no latency bucket carries exemplar trace %s", ir.TraceID)
	}

	tr, err := http.Get(ts.URL + "/debug/traces?trace=" + ir.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("?trace=%s: status %d", ir.TraceID, tr.StatusCode)
	}
	var view struct {
		Trace *obs.Trace `json:"trace"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Trace == nil || view.Trace.ID != ir.TraceID || len(view.Trace.Spans) == 0 {
		t.Fatalf("exemplar did not resolve to a spanned trace: %+v", view.Trace)
	}
}

func TestSLOEndpointUnconfigured(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	_, _, ts := newTestServer(t, pol, 1)
	resp, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/slo with no objectives: status %d, want 404", resp.StatusCode)
	}
}

// TestSLOEndpointViolation arms an unmeetable latency objective, drives
// traffic, and asserts GET /v1/slo reports it violated while the loose
// objective stays ok — and that the radixserve_slo_* gauges agree.
func TestSLOEndpointViolation(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 7}
	cfg := testConfig(t)
	reg := NewRegistry(pol)
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	objectives, err := slo.ParseObjectives([]string{"m::1us:99", "m::10s:50"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerOpts(reg, "127.0.0.1:0", ServerOptions{SLO: slo.Config{Objectives: objectives}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); reg.Close() })

	row := make([]float64, m.InputWidth())
	out := make([]float64, m.OutputWidth())
	for i := 0; i < 4; i++ {
		if err := m.Infer(context.Background(), row, out); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/slo: status %d", resp.StatusCode)
	}
	var view slo.View
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	var breached, loose *slo.Status
	for i := range view.Statuses {
		st := &view.Statuses[i]
		if st.Model != "m" || st.Class != "" {
			continue
		}
		switch st.Objective.Latency {
		case time.Microsecond:
			breached = st
		case 10 * time.Second:
			loose = st
		}
	}
	if breached == nil || loose == nil {
		t.Fatalf("objectives missing from view: %+v", view.Statuses)
	}
	if breached.State != slo.StateViolated || breached.FastBurn < view.FastBurn {
		t.Fatalf("1µs objective: state %q fast burn %g (threshold %g), want violated above threshold",
			breached.State, breached.FastBurn, view.FastBurn)
	}
	if loose.State != slo.StateOK {
		t.Fatalf("10s objective: state %q, want ok", loose.State)
	}

	p := parsePrometheus(t, scrapeMetrics(t, ts.URL))
	stateSeries := `radixserve_slo_state{objective="` + breached.Objective.Name + `",model="m",class=""}`
	if v := p.value(t, stateSeries); v != 2 {
		t.Fatalf("slo_state gauge = %g, want 2 (violated)", v)
	}
	burnSeries := `radixserve_slo_fast_burn{objective="` + breached.Objective.Name + `",model="m",class=""}`
	if v := p.value(t, burnSeries); v < view.FastBurn {
		t.Fatalf("slo_fast_burn gauge = %g, want >= threshold %g", v, view.FastBurn)
	}
}
