package serve

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/radix-net/radixnet/internal/obs"
)

// The built-in priority classes. A registry may serve any class set via
// QoSConfig.Weights; these three are the default, covering the workload
// spectrum the serving tier sees in practice: latency-sensitive user
// traffic, throughput-oriented bulk scoring, and best-effort churn.
const (
	ClassInteractive = "interactive"
	ClassBatch       = "batch"
	ClassBackground  = "background"
)

// DefaultClassWeights is the class set a registry uses when QoSConfig.Weights
// is nil: interactive traffic gets 8 rows dispatched for every 2 batch rows
// and 1 background row when all three classes are backlogged.
func DefaultClassWeights() map[string]int {
	return map[string]int{ClassInteractive: 8, ClassBatch: 2, ClassBackground: 1}
}

var (
	// ErrUnknownClass reports a Request naming a class the registry was not
	// configured with. The HTTP layer maps it to 422.
	ErrUnknownClass = errors.New("serve: unknown request class")
	// ErrDeadlineExceeded reports a request whose deadline passed before its
	// rows reached an engine: expired rows are shed at dequeue, never
	// executed, so a deadlined caller is not billed engine time for answers
	// it can no longer use. The HTTP layer maps it to 504.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded before execution")
)

// QoSConfig sets a registry's quality-of-service policy: the class set with
// its weighted-fair-queuing weights, the class unlabeled requests fall into,
// and the machine-wide engine quota models share.
type QoSConfig struct {
	// Weights maps class name → scheduling weight (≥ 1). Inside each model,
	// a deficit-round-robin scheduler dispatches rows across the classes in
	// weight proportion whenever more than one class is backlogged. Nil
	// selects DefaultClassWeights.
	Weights map[string]int
	// DefaultClass is the class of requests that do not name one — every
	// pre-QoS caller (bare Infer/InferBatch, HTTP bodies without "class").
	// Default "interactive", so existing traffic keeps top priority.
	DefaultClass string
	// ExecSlots bounds batch executions running concurrently across ALL
	// models in the registry — the engine quota models contend for. When
	// models compete, slots are granted share-weighted (Policy.Share) by a
	// stride scheduler. 0 selects GOMAXPROCS; negative disables the quota
	// (every model executes whenever it holds an engine).
	ExecSlots int
}

// qosSet is the resolved class universe shared by every model of one
// registry: canonical order (descending weight, then name), name↔id
// mapping, and the default class.
type qosSet struct {
	names   []string
	weights []int
	ids     map[string]int
	def     int
}

func newQoSSet(cfg QoSConfig) (*qosSet, error) {
	weights := cfg.Weights
	if weights == nil {
		weights = DefaultClassWeights()
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("serve: empty class set")
	}
	q := &qosSet{ids: make(map[string]int, len(weights))}
	for name, w := range weights {
		if name == "" {
			return nil, fmt.Errorf("serve: empty class name")
		}
		if w < 1 {
			return nil, fmt.Errorf("serve: class %q: weight %d, want ≥ 1", name, w)
		}
		q.names = append(q.names, name)
	}
	// Descending weight then name: the scheduler's round-robin order and the
	// metrics exposition order, stable across runs regardless of map order.
	sort.Slice(q.names, func(i, j int) bool {
		wi, wj := weights[q.names[i]], weights[q.names[j]]
		if wi != wj {
			return wi > wj
		}
		return q.names[i] < q.names[j]
	})
	q.weights = make([]int, len(q.names))
	for i, name := range q.names {
		q.weights[i] = weights[name]
		q.ids[name] = i
	}
	def := cfg.DefaultClass
	if def == "" {
		def = ClassInteractive
		if _, ok := q.ids[def]; !ok {
			// A custom class set without "interactive": the heaviest class is
			// the least surprising default for unlabeled traffic.
			def = q.names[0]
		}
	}
	di, ok := q.ids[def]
	if !ok {
		return nil, fmt.Errorf("serve: default class %q not in class set", def)
	}
	q.def = di
	return q, nil
}

// id resolves a class name ("" → the default class) to its index.
func (q *qosSet) id(name string) (int, error) {
	if name == "" {
		return q.def, nil
	}
	i, ok := q.ids[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownClass, name)
	}
	return i, nil
}

func (q *qosSet) name(i int) string { return q.names[i] }
func (q *qosSet) size() int         { return len(q.names) }

// Request is the first-class inference request: a multi-row payload plus
// the QoS metadata the scheduler acts on. The zero value of every QoS field
// reproduces pre-QoS behavior (default class, no deadline), so wrapping an
// old call site is just Request{Rows: rows}.
type Request struct {
	// Rows are the input rows, each Model.InputWidth() long. Rows of one
	// request coalesce with concurrent requests' rows into shared engine
	// batches regardless of class.
	Rows [][]float64
	// Class names the priority class ("" → the registry's default class).
	// Unknown classes fail with ErrUnknownClass before any row is queued.
	Class string
	// Deadline, when nonzero, bounds queueing: rows still queued when it
	// passes are shed at dequeue with ErrDeadlineExceeded instead of
	// executing. It does not preempt rows already dispatched to an engine —
	// a row that starts executing finishes and is delivered.
	Deadline time.Time
	// TraceID correlates the request across tiers: generated at the edge
	// (router or HTTP server, carried as X-Radix-Trace-Id on the wire) or
	// by Do itself when empty. Response echoes the effective ID.
	TraceID string

	// outs, when non-nil, are caller-owned destination slices (one per row,
	// each OutputWidth long) — the zero-copy path the Infer compatibility
	// wrapper uses. Nil entries are allocated.
	outs [][]float64
}

// Response reports a completed Request with its QoS accounting.
type Response struct {
	// Outputs are the result rows, in request order.
	Outputs [][]float64
	// Class is the canonical class the request was scheduled as (the
	// registry default when the request named none).
	Class string
	// QueueWait is the longest any row of the request sat queued before its
	// batch was dispatched to an engine.
	QueueWait time.Duration
	// Execute is the longest engine invocation any row of the request rode
	// in (a row's end-to-end latency ≈ its queue wait + execute).
	Execute time.Duration
	// TraceID is the request's effective trace ID (the caller's, or one
	// Do generated when the request carried none).
	TraceID string
	// Spans are the per-stage scheduler timings — queue, assemble, lease,
	// execute, deliver — each the worst across the request's rows, start
	// offsets chained cumulatively. The HTTP layer prepends its own
	// admission span and echoes the chain on the wire.
	Spans []obs.Span
}

// pipelineSpans renders the scheduler-stage durations as a span chain
// with cumulative start offsets. Each duration is the worst across the
// request's rows, so the chain is representative of the request's
// critical path rather than a strict timeline of any single row.
func pipelineSpans(queue, assemble, lease, execute, deliver time.Duration) []obs.Span {
	stages := [...]struct {
		name string
		d    time.Duration
	}{{"queue", queue}, {"assemble", assemble}, {"lease", lease}, {"execute", execute}, {"deliver", deliver}}
	spans := make([]obs.Span, 0, len(stages))
	at := time.Duration(0)
	for _, s := range stages {
		spans = append(spans, obs.MkSpan(s.name, at, s.d))
		at += s.d
	}
	return spans
}

// classQ is one class's bounded FIFO inside a model's scheduler: a fixed
// ring of QueueDepth slots plus the class's deficit-round-robin state.
type classQ struct {
	weight  int
	deficit int
	buf     []*pending
	head, n int
}

//radix:hotpath
func (q *classQ) push(p *pending) bool {
	if q.n == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
	return true
}

//radix:hotpath
func (q *classQ) pop() *pending {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

// classSched is a model's weighted-fair scheduler state: one bounded FIFO
// per class, drained by deficit round-robin. Not self-locking — the batcher
// guards it with its mutex.
type classSched struct {
	classes []classQ
	rr      int // the class the next take resumes at
	pending int // rows queued across all classes
}

func newClassSched(qos *qosSet, depth int) *classSched {
	s := &classSched{classes: make([]classQ, qos.size())}
	for i := range s.classes {
		s.classes[i] = classQ{weight: qos.weights[i], buf: make([]*pending, depth)}
	}
	return s
}

// enqueue appends a row to its class queue; ErrQueueFull when that class is
// at its bound (each class has its own QueueDepth, so a background flood
// can never crowd interactive rows out of queue space).
//
//radix:hotpath
func (s *classSched) enqueue(p *pending) error {
	if !s.classes[p.class].push(p) {
		return ErrQueueFull
	}
	s.pending++
	return nil
}

// take dequeues up to max rows by deficit round-robin, appending them to
// dst. Each visit to a backlogged class credits it weight rows of deficit;
// the class then dispatches rows until the deficit or its queue runs out.
// Deficit and position persist across calls, so fairness holds across
// batches, and an empty class's deficit resets — an idle class cannot bank
// credit. Rows whose deadline has passed are shed (returned separately,
// never dispatched) and cost the class no deficit.
//
// Starvation-freedom: any backlogged class with weight w ≥ 1 dispatches at
// least w rows per full round-robin cycle, so with total weight W it waits
// at most ~W dispatched rows for its next turn, regardless of how
// adversarially the other classes arrive.
//
// allow=alloc: got grows into the caller's reusable dst (amortized to zero
// once the worker's slice reaches MaxBatch) and shed only allocates on the
// deadline-miss path.
//
//radix:hotpath allow=alloc
func (s *classSched) take(dst []*pending, max int, now time.Time) (got, shed []*pending) {
	got = dst
	for s.pending > 0 && len(got) < max {
		cq := &s.classes[s.rr]
		if cq.n == 0 {
			cq.deficit = 0
			s.rr = (s.rr + 1) % len(s.classes)
			continue
		}
		if cq.deficit <= 0 {
			cq.deficit += cq.weight
		}
		for cq.n > 0 && cq.deficit > 0 && len(got) < max {
			p := cq.pop()
			p.deq = now // trace span boundary: row left its class queue
			s.pending--
			if !p.deadline.IsZero() && now.After(p.deadline) {
				shed = append(shed, p)
				continue
			}
			cq.deficit--
			got = append(got, p)
		}
		if len(got) >= max && cq.n > 0 && cq.deficit > 0 {
			// Batch full mid-quantum: resume this class, with its remaining
			// deficit, on the next take.
			break
		}
		if cq.n == 0 {
			cq.deficit = 0
		}
		s.rr = (s.rr + 1) % len(s.classes)
	}
	return got, shed
}

// depth reports one class's queued rows.
func (s *classSched) depth(class int) int { return s.classes[class].n }
