package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// Health is the GET /healthz body: the wire shape a liveness probe decodes.
// The cluster router probes backend radixserve instances with CheckHealth
// and ejects nodes whose probes fail. Status is "ok" while serving and
// "draining" (with HTTP 503) once the registry has closed for shutdown, so
// routers stop sending a stopping backend traffic before its listener dies.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Models        int     `json:"models"`
	// Zone is the backend's self-reported failure domain (rack,
	// availability zone — operator-defined granularity). The router's
	// zone-aware placement learns it from probes and spreads a model's
	// replicas across distinct zones. Empty when the operator set none.
	Zone string `json:"zone,omitempty"`
}

// CheckHealth probes one radixserve instance's GET /healthz. baseURL is the
// instance root (e.g. "http://10.0.0.7:8080"); ctx bounds the probe (callers
// should attach a timeout — a hung backend must fail the probe, not block
// it). A non-200 status or an undecodable body is an error: a probe is only
// healthy when the backend says so in the expected shape.
func CheckHealth(ctx context.Context, client *http.Client, baseURL string) (Health, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return Health{}, fmt.Errorf("serve: healthz probe: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return Health{}, fmt.Errorf("serve: healthz probe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Health{}, fmt.Errorf("serve: healthz probe: status %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("serve: healthz probe: %w", err)
	}
	if h.Status != "ok" {
		return h, fmt.Errorf("serve: healthz probe: backend status %q", h.Status)
	}
	return h, nil
}

// ListModels fetches one radixserve instance's GET /v1/models. The cluster
// router uses it both to merge fleet-wide listings and to discover which
// backends report a model when fanning out admin operations (reload,
// unregister).
func ListModels(ctx context.Context, client *http.Client, baseURL string) ([]ModelInfo, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/models", nil)
	if err != nil {
		return nil, fmt.Errorf("serve: models probe: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: models probe: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: models probe: status %d", resp.StatusCode)
	}
	var body struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("serve: models probe: %w", err)
	}
	return body.Models, nil
}
