package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
)

// testConfig returns a small RadiX-Net config (width 16, 2 layers).
func testConfig(t testing.TB) core.Config {
	t.Helper()
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(4, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// referenceOutputs runs every row of in through a fresh engine one row at a
// time — the per-row ground truth that batched serving must match bitwise.
func referenceOutputs(t testing.TB, cfg core.Config, in *sparse.Dense) [][]float64 {
	t.Helper()
	eng, err := infer.FromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]float64, in.Rows())
	for r := 0; r < in.Rows(); r++ {
		row, err := sparse.DenseFromSlice(1, in.Cols(), in.RowSlice(r))
		if err != nil {
			t.Fatal(err)
		}
		y, err := eng.Infer(row)
		if err != nil {
			t.Fatal(err)
		}
		outs[r] = append([]float64(nil), y.Data()...)
	}
	return outs
}

func TestRegistryRegisterAndList(t *testing.T) {
	reg := NewRegistry(Policy{})
	defer reg.Close()
	cfg := testConfig(t)
	m, err := reg.Register("a", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.InputWidth() != 16 || m.OutputWidth() != 16 {
		t.Fatalf("widths %d/%d, want 16/16", m.InputWidth(), m.OutputWidth())
	}
	if _, err := reg.Register("a", cfg, 1); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := reg.Register("", cfg, 1); err == nil {
		t.Fatal("empty name accepted")
	}
	cfgJSON, err := graphio.MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.RegisterJSON("b", cfgJSON, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.RegisterJSON("c", []byte("{nope"), 1); err == nil {
		t.Fatal("malformed config JSON accepted")
	}
	infos := reg.List()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("List = %+v", infos)
	}
	if infos[0].Engines != 2 || infos[0].MaxBatch != 32 || infos[0].QueueDepth != 256 {
		t.Fatalf("info defaults wrong: %+v", infos[0])
	}
	if got, ok := reg.Model("a"); !ok || got != m {
		t.Fatal("Model lookup failed")
	}
	if _, ok := reg.Model("nope"); ok {
		t.Fatal("phantom model")
	}
}

// TestSingleRowBitIdenticalToDirectEngine is the serving acceptance core:
// rows routed through the micro-batcher must equal per-row Engine.Infer
// results bit for bit.
func TestSingleRowBitIdenticalToDirectEngine(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: time.Millisecond})
	defer reg.Close()
	m, err := reg.Register("m", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(24, m.InputWidth(), 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, cfg, in)
	out := make([]float64, m.OutputWidth())
	for r := 0; r < in.Rows(); r++ {
		if err := m.Infer(context.Background(), in.RowSlice(r), out); err != nil {
			t.Fatal(err)
		}
		for c, v := range out {
			if v != want[r][c] {
				t.Fatalf("row %d col %d: got %v want %v (not bit-identical)", r, c, v, want[r][c])
			}
		}
	}
}

// TestConcurrentClientsCoalesceAndMatch drives many goroutines through one
// model: all results must stay bit-identical to the per-row reference, and
// the scheduler must actually coalesce (fewer engine invocations than
// rows).
func TestConcurrentClientsCoalesceAndMatch(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: 100 * time.Millisecond, Workers: 1})
	defer reg.Close()
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 32
	in, err := dataset.SparseBatch(rows, m.InputWidth(), 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, cfg, in)
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for r := 0; r < rows; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out := make([]float64, m.OutputWidth())
			if err := m.Infer(context.Background(), in.RowSlice(r), out); err != nil {
				t.Errorf("row %d: %v", r, err)
				return
			}
			for c, v := range out {
				if v != want[r][c] {
					mismatches.Add(1)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if n := mismatches.Load(); n > 0 {
		t.Fatalf("%d rows diverged from per-row reference", n)
	}
	s := m.Metrics().Snapshot()
	if s.Completed != rows || s.BatchedRows != rows {
		t.Fatalf("completed %d batched %d, want %d", s.Completed, s.BatchedRows, rows)
	}
	// With a single worker, a 100ms collection window, and 32 concurrent
	// submissions, coalescing is all but certain; equality would mean every
	// row ran alone.
	if s.Batches >= rows {
		t.Fatalf("no coalescing: %d batches for %d rows", s.Batches, rows)
	}
}

// TestBackpressureDeterministic leases the model's only engine so the lone
// worker blocks, fills the bounded queue, and verifies that the overflow is
// rejected with ErrQueueFull while everything accepted completes after the
// engine returns.
func TestBackpressureDeterministic(t *testing.T) {
	cfg := testConfig(t)
	pol := Policy{MaxBatch: 4, MaxLatency: 2 * time.Millisecond, QueueDepth: 4, Workers: 1}
	reg := NewRegistry(pol)
	defer reg.Close()
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(32, m.InputWidth(), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng := m.Lease() // starve the worker: no batch can execute

	const submissions = 32
	results := make(chan error, submissions)
	var wg sync.WaitGroup
	for i := 0; i < submissions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := make([]float64, m.OutputWidth())
			results <- m.Infer(context.Background(), in.RowSlice(i), out)
		}(i)
	}
	// Wait until the queue is saturated: the worker holds at most MaxBatch
	// rows, the queue at most QueueDepth, so at least
	// submissions − MaxBatch − QueueDepth rows must be rejected.
	deadline := time.Now().Add(5 * time.Second)
	for m.Metrics().Rejected.Load() < submissions-int64(pol.MaxBatch)-int64(pol.QueueDepth) {
		if time.Now().After(deadline) {
			t.Fatalf("rejections never accumulated: %d", m.Metrics().Rejected.Load())
		}
		time.Sleep(time.Millisecond)
	}
	m.Release(eng)
	wg.Wait()
	close(results)
	var ok, full int
	for err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrQueueFull):
			full++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if full == 0 {
		t.Fatal("no backpressure rejections")
	}
	if ok == 0 {
		t.Fatal("nothing completed after the engine freed up")
	}
	if ok+full != submissions {
		t.Fatalf("accounted %d of %d", ok+full, submissions)
	}
	s := m.Metrics().Snapshot()
	if s.Completed != int64(ok) || s.Rejected != int64(full) {
		t.Fatalf("metrics disagree with client view: %+v vs ok=%d full=%d", s, ok, full)
	}
}

func TestInferBatchWholeRequestSemantics(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: time.Millisecond})
	defer reg.Close()
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(6, m.InputWidth(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, in.Rows())
	for r := range rows {
		rows[r] = in.RowSlice(r)
	}
	outs, err := m.InferBatch(context.Background(), rows)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, cfg, in)
	for r := range outs {
		for c := range outs[r] {
			if outs[r][c] != want[r][c] {
				t.Fatalf("row %d diverged", r)
			}
		}
	}
	// Width errors fail the whole request.
	if _, err := m.InferBatch(context.Background(), [][]float64{rows[0], {1, 2}}); err == nil {
		t.Fatal("bad row width accepted")
	}
	if _, err := m.InferBatch(context.Background(), nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestCloseRejectsNewWorkAndDrains(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 4, MaxLatency: 50 * time.Millisecond})
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(4, m.InputWidth(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Rows accepted before Close must complete (drain), even though they
	// are still waiting out the 50ms batch-collection window when Close
	// begins.
	var wg sync.WaitGroup
	errs := make([]error, in.Rows())
	for r := 0; r < in.Rows(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out := make([]float64, m.OutputWidth())
			errs[r] = m.Infer(context.Background(), in.RowSlice(r), out)
		}(r)
	}
	for m.Metrics().Accepted.Load() < int64(in.Rows()) {
		time.Sleep(time.Millisecond)
	}
	reg.Close()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("pre-close row %d failed: %v", r, err)
		}
	}
	out := make([]float64, m.OutputWidth())
	if err := m.Infer(context.Background(), in.RowSlice(0), out); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Infer = %v, want ErrClosed", err)
	}
	if _, err := reg.Register("late", cfg, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Register = %v, want ErrClosed", err)
	}
	reg.Close() // idempotent
}

// newTestServer wires a registry + server over httptest.
func newTestServer(t *testing.T, pol Policy, engines int) (*Server, *Model, *httptest.Server) {
	t.Helper()
	cfg := testConfig(t)
	reg := NewRegistry(pol)
	m, err := reg.Register("m", cfg, engines)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, "127.0.0.1:0")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return s, m, ts
}

func postInfer(t *testing.T, url string, req InferRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPInferEndToEnd(t *testing.T) {
	_, m, ts := newTestServer(t, Policy{MaxBatch: 8, MaxLatency: time.Millisecond}, 2)
	cfg := m.Config()
	in, err := dataset.SparseBatch(3, m.InputWidth(), 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, cfg, in)
	rows := make([][]float64, in.Rows())
	for r := range rows {
		rows[r] = in.RowSlice(r)
	}
	resp, body := postInfer(t, ts.URL, InferRequest{Model: "m", Inputs: rows, Categories: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got InferResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Rows != 3 || len(got.Outputs) != 3 || len(got.Active) != 3 || len(got.Argmax) != 3 {
		t.Fatalf("response shape: %+v", got)
	}
	// JSON float64 round-trips exactly (shortest-repr encoding), so even
	// over the wire the outputs stay bit-identical.
	for r := range got.Outputs {
		for c := range got.Outputs[r] {
			if got.Outputs[r][c] != want[r][c] {
				t.Fatalf("row %d col %d: %v != %v", r, c, got.Outputs[r][c], want[r][c])
			}
		}
	}

	// Error paths.
	resp, _ = postInfer(t, ts.URL, InferRequest{Model: "nope", Inputs: rows})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}
	resp, _ = postInfer(t, ts.URL, InferRequest{Model: "m"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty inputs: status %d", resp.StatusCode)
	}
	resp, _ = postInfer(t, ts.URL, InferRequest{Model: "m", Inputs: [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad width: status %d", resp.StatusCode)
	}
	r2, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader("{broken"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken JSON: status %d", r2.StatusCode)
	}
	r3, err := http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET infer: status %d", r3.StatusCode)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	pol := Policy{MaxBatch: 2, MaxLatency: 2 * time.Millisecond, QueueDepth: 2, Workers: 1}
	_, m, ts := newTestServer(t, pol, 1)
	in, err := dataset.SparseBatch(16, m.InputWidth(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := m.Lease()
	var wg sync.WaitGroup
	var got429, got200 atomic.Int64
	release := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postInfer(t, ts.URL, InferRequest{Model: "m", Inputs: [][]float64{in.RowSlice(i)}})
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				var e ErrorResponse
				if err := json.Unmarshal(body, &e); err != nil || e.Model != "m" {
					t.Errorf("429 body %s: model name missing (err %v)", body, err)
				}
				got429.Add(1)
			case http.StatusOK:
				got200.Add(1)
			default:
				t.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	go func() {
		// At least 16−2−2 rejections must accumulate while the engine is
		// held; then let the accepted rows finish.
		deadline := time.Now().Add(5 * time.Second)
		for m.Metrics().Rejected.Load() < 12 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		m.Release(eng)
		close(release)
	}()
	wg.Wait()
	<-release
	if got429.Load() == 0 {
		t.Fatal("no 429 responses under saturation")
	}
	if got200.Load() == 0 {
		t.Fatal("no requests completed after release")
	}
}

func TestHTTPModelsHealthzMetrics(t *testing.T) {
	_, m, ts := newTestServer(t, Policy{MaxBatch: 4, MaxLatency: time.Millisecond}, 1)
	// Push one row so counters are nonzero.
	out := make([]float64, m.OutputWidth())
	row := make([]float64, m.InputWidth())
	row[3] = 1
	if err := m.Infer(context.Background(), row, out); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models map[string][]ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models["models"]) != 1 || models["models"][0].Name != "m" {
		t.Fatalf("models = %+v", models)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %+v", health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`radixserve_rows_accepted_total{model="m"} 1`,
		`radixserve_rows_completed_total{model="m"} 1`,
		`radixserve_batches_total{model="m"} 1`,
		`radixserve_queue_capacity{model="m"}`,
		"radixserve_http_responses_total",
		"radixserve_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestServerStartShutdown(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 4, MaxLatency: time.Millisecond})
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, "127.0.0.1:0")
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Shutdown closed the registry too: submissions now fail.
	out := make([]float64, m.OutputWidth())
	if err := m.Infer(context.Background(), make([]float64, m.InputWidth()), out); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown Infer = %v, want ErrClosed", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}

func TestMetricsSnapshotDerived(t *testing.T) {
	var m Metrics
	m.Batches.Store(4)
	m.BatchedRows.Store(10)
	m.Completed.Store(10)
	m.observe(int64(2*time.Millisecond), "")
	m.observe(int64(6*time.Millisecond), "")
	s := m.Snapshot()
	if s.MeanBatch != 2.5 {
		t.Fatalf("MeanBatch = %v", s.MeanBatch)
	}
	if s.MaxLatency != 6*time.Millisecond {
		t.Fatalf("MaxLatency = %v", s.MaxLatency)
	}
	if s.MeanLatency != (8*time.Millisecond)/10 {
		t.Fatalf("MeanLatency = %v", s.MeanLatency)
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults(3)
	if p.MaxBatch != 32 || p.MaxLatency != 2*time.Millisecond || p.QueueDepth != 256 || p.Workers != 3 {
		t.Fatalf("defaults = %+v", p)
	}
	p = Policy{MaxLatency: -1}.withDefaults(1)
	if p.MaxLatency != -1 {
		t.Fatal("negative MaxLatency (no waiting) must be preserved")
	}
	keep := Policy{MaxBatch: 7, MaxLatency: time.Second, QueueDepth: 9, Workers: 2}.withDefaults(5)
	if keep.MaxBatch != 7 || keep.MaxLatency != time.Second || keep.QueueDepth != 9 || keep.Workers != 2 {
		t.Fatalf("explicit policy overridden: %+v", keep)
	}
}

// TestSingleClientFastPathLatency is the latency regression test for the
// single-client fast path: a closed-loop client (one row in flight at a
// time) must not pay the MaxLatency batching budget per row. With the
// deliberately huge 300ms budget below, the pre-fast-path scheduler took
// ≥ 1.5s for five rows; the fast path dispatches each row immediately, so
// the whole loop must finish well inside one budget.
func TestSingleClientFastPathLatency(t *testing.T) {
	cfg := testConfig(t)
	const budget = 300 * time.Millisecond
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: budget, Workers: 1})
	defer reg.Close()
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(5, m.InputWidth(), 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, cfg, in)
	out := make([]float64, m.OutputWidth())
	start := time.Now()
	for r := 0; r < in.Rows(); r++ {
		if err := m.Infer(context.Background(), in.RowSlice(r), out); err != nil {
			t.Fatal(err)
		}
		for c, v := range out {
			if v != want[r][c] {
				t.Fatalf("row %d diverged under fast path", r)
			}
		}
	}
	if elapsed := time.Since(start); elapsed >= budget {
		t.Fatalf("5 closed-loop rows took %v with a %v latency budget: fast path not engaged", elapsed, budget)
	}
}

// TestInferBatchCoalescesDespiteFastPath guards the other side of the fast
// path: a multi-row request announces its rows up front, so a collector
// that wins the race for the first row keeps waiting for its siblings
// instead of executing a tiny batch per row.
func TestInferBatchCoalescesDespiteFastPath(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: 100 * time.Millisecond, Workers: 1})
	defer reg.Close()
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, err := dataset.SparseBatch(8, m.InputWidth(), 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, in.Rows())
	for r := range rows {
		rows[r] = in.RowSlice(r)
	}
	start := time.Now()
	if _, err := m.InferBatch(context.Background(), rows); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	s := m.Metrics().Snapshot()
	if s.Batches != 1 {
		t.Fatalf("8-row request ran in %d batches, want 1", s.Batches)
	}
	// The batch fills to MaxBatch and must then execute without waiting out
	// the rest of the 100ms collection window.
	if elapsed >= 100*time.Millisecond {
		t.Fatalf("full batch still waited out the latency budget (%v)", elapsed)
	}
}

// TestCheckHealth exercises the probe client the cluster router uses.
func TestCheckHealth(t *testing.T) {
	_, _, ts := newTestServer(t, Policy{}, 1)
	h, err := CheckHealth(context.Background(), nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Models != 1 || h.UptimeSeconds < 0 {
		t.Fatalf("health = %+v", h)
	}
	// A backend that answers non-200 is unhealthy.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer bad.Close()
	if _, err := CheckHealth(context.Background(), nil, bad.URL); err == nil {
		t.Fatal("unhealthy backend probed healthy")
	}
	// A dead backend (connection refused) is unhealthy.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if _, err := CheckHealth(context.Background(), nil, dead.URL); err == nil {
		t.Fatal("dead backend probed healthy")
	}
	// The probe honors ctx cancellation (a hung backend must not block it).
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer hang.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := CheckHealth(ctx, nil, hang.URL); err == nil {
		t.Fatal("hung backend probed healthy")
	}
}

// TestManyModelsConcurrently exercises the registry under cross-model load.
func TestManyModelsConcurrently(t *testing.T) {
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: time.Millisecond})
	defer reg.Close()
	var models []*Model
	for i, radices := range [][]int{{4, 4}, {2, 2, 2}, {3, 3}} {
		cfg, err := core.NewConfig([]radix.System{radix.MustNew(radices...)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		m, err := reg.Register(fmt.Sprintf("m%d", i), cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	var wg sync.WaitGroup
	for _, m := range models {
		in, err := dataset.SparseBatch(16, m.InputWidth(), 2, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceOutputs(t, m.Config(), in)
		for r := 0; r < in.Rows(); r++ {
			wg.Add(1)
			go func(m *Model, r int, want []float64) {
				defer wg.Done()
				out := make([]float64, m.OutputWidth())
				if err := m.Infer(context.Background(), in.RowSlice(r), out); err != nil {
					t.Errorf("%s row %d: %v", m.Name(), r, err)
					return
				}
				for c, v := range out {
					if v != want[c] {
						t.Errorf("%s row %d diverged", m.Name(), r)
						return
					}
				}
			}(m, r, want[r])
		}
	}
	wg.Wait()
}
