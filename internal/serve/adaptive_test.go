package serve

import (
	"context"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/dataset"
)

// TestCollectWindowClampAndMax pins the adaptive window's arithmetic:
// twice the worst per-class queue-delay EWMA, clamped to
// [fastPathGrace, MaxLatency].
func TestCollectWindowClampAndMax(t *testing.T) {
	reg, err := NewRegistryQoS(Policy{MaxBatch: 8, MaxLatency: 2 * time.Millisecond}, QoSConfig{
		Weights: map[string]int{"interactive": 3, "background": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	m, err := reg.Register("m", testConfig(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	b := m.bat
	set := func(ewma ...time.Duration) {
		for c := range b.classWait {
			b.classWait[c].Store(0)
		}
		for c, d := range ewma {
			b.classWait[c].Store(d.Nanoseconds())
		}
	}

	set() // idle: every class EWMA zero
	if got := b.collectWindow(); got != fastPathGrace {
		t.Fatalf("idle window = %v, want floor %v", got, fastPathGrace)
	}
	set(10 * time.Millisecond) // saturated: 2×10ms far above the budget
	if got := b.collectWindow(); got != b.pol.MaxLatency {
		t.Fatalf("saturated window = %v, want ceiling %v", got, b.pol.MaxLatency)
	}
	set(300 * time.Microsecond) // mid-band: tracks 2× the EWMA exactly
	if got, want := b.collectWindow(), 600*time.Microsecond; got != want {
		t.Fatalf("mid-band window = %v, want %v", got, want)
	}
	set(50*time.Microsecond, 400*time.Microsecond) // worst class governs
	if got, want := b.collectWindow(), 800*time.Microsecond; got != want {
		t.Fatalf("multi-class window = %v, want %v (worst class)", got, want)
	}
}

// TestQueueDelayEWMAConvergence drives the measurement path directly:
// sustained large queue delays open the window to the full MaxLatency
// within a handful of batches, and sustained near-zero delays decay it
// back to the fast-path floor. This is the saturation half of the
// adaptive-batching contract, deterministic because it feeds the same
// samples execute() would record under real queueing.
func TestQueueDelayEWMAConvergence(t *testing.T) {
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: 2 * time.Millisecond})
	defer reg.Close()
	m, err := reg.Register("m", testConfig(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	b := m.bat

	// Saturation: rows waiting ~MaxLatency each. The EWMA climbs past
	// MaxLatency/2 within a few samples and the window hits the ceiling.
	for i := 0; i < 32; i++ {
		b.noteQueueDelay(0, 2*time.Millisecond)
	}
	if got := b.collectWindow(); got != b.pol.MaxLatency {
		t.Fatalf("after sustained queueing: window = %v, want %v", got, b.pol.MaxLatency)
	}

	// Recovery: load drains, queue delays drop to zero. The 1/8 smoothing
	// forgets the saturated history within a few dozen samples.
	for i := 0; i < 64; i++ {
		b.noteQueueDelay(0, 0)
	}
	if got := b.collectWindow(); got != fastPathGrace {
		t.Fatalf("after drain: window = %v, want floor %v", got, fastPathGrace)
	}
}

// TestAdaptiveWindowLightLoadConverges is the end-to-end half: a batcher
// whose EWMA remembers heavy queueing is driven by a sequential
// single-row client (the light-load extreme), and the real execute()
// measurements pull the collection window back down to the fast-path
// floor — light load tunes MaxLatency down by itself.
func TestAdaptiveWindowLightLoadConverges(t *testing.T) {
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: 2 * time.Millisecond})
	defer reg.Close()
	m, err := reg.Register("m", testConfig(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	b := m.bat
	b.classWait[0].Store((5 * time.Millisecond).Nanoseconds()) // poisoned by past saturation
	if got := b.collectWindow(); got != b.pol.MaxLatency {
		t.Fatalf("precondition: window = %v, want ceiling %v", got, b.pol.MaxLatency)
	}

	in, err := dataset.SparseBatch(1, m.InputWidth(), 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, m.OutputWidth())
	for i := 0; i < 80; i++ {
		if err := m.Infer(context.Background(), in.RowSlice(0), out); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.collectWindow(); got != fastPathGrace {
		t.Fatalf("after sequential light load: window = %v, want floor %v (EWMA %v)",
			got, fastPathGrace, time.Duration(b.classWait[0].Load()))
	}
}
