package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/obs/slo"
)

// maxRequestBody bounds a POST /v1/infer body; a full MaxBatch of rows at
// Graph Challenge widths is a few MB of JSON, so 64 MiB is generous.
const maxRequestBody = 64 << 20

// Header names the cluster router uses to forward QoS metadata alongside
// the (unmodified) request body: the canonical class and the remaining
// deadline budget in milliseconds, recomputed per forward attempt so
// retries and failovers shrink the budget instead of resetting it. When
// present, the headers take precedence over the body's class/deadline_ms.
const (
	HeaderClass      = "X-Radix-Class"
	HeaderDeadlineMs = "X-Radix-Deadline-Ms"
)

// maxDeadlineMs clamps a request's deadline budget BEFORE the float→
// Duration multiply: ~31.7 years in milliseconds, far beyond any real
// budget but small enough that ms×1e6 can never overflow int64 to a
// negative Duration — an unclamped 1e15 would wrap an effectively
// unbounded deadline into an instantly-expired one (the same overflow
// class the router's Retry-After parser clamps against).
const maxDeadlineMs = 1e12

// DeadlineFromMs converts a deadline_ms budget to an absolute deadline
// from now, overflow-clamped; budgets ≤ 0 mean "no deadline" (zero time).
// Shared by the HTTP handler and the cluster router.
func DeadlineFromMs(ms float64) time.Time {
	if ms <= 0 {
		return time.Time{}
	}
	if ms > maxDeadlineMs {
		ms = maxDeadlineMs
	}
	return time.Now().Add(time.Duration(ms * float64(time.Millisecond)))
}

// InferRequest is the POST /v1/infer body.
type InferRequest struct {
	// Model names a registered model.
	Model string `json:"model"`
	// Inputs are the request rows, each InputWidth long. Rows of one
	// request coalesce with concurrent requests' rows into shared engine
	// batches.
	Inputs [][]float64 `json:"inputs"`
	// Class names the request's priority class (one of the registry's
	// configured classes; empty means the registry's default class).
	// Unknown classes are refused with 422 before any row is queued.
	Class string `json:"class,omitempty"`
	// DeadlineMs is the request's deadline budget in milliseconds from
	// arrival. Rows still queued when it expires are shed (never executed)
	// and the request fails with 504. 0 means no deadline.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Categories additionally reports, per row, whether any activation
	// survived (the Graph Challenge category criterion) and the argmax
	// neuron.
	Categories bool `json:"categories,omitempty"`
}

// InferResponse is the POST /v1/infer success body.
type InferResponse struct {
	Model   string      `json:"model"`
	Rows    int         `json:"rows"`
	Outputs [][]float64 `json:"outputs"`
	// Class is the canonical class the request was scheduled as.
	Class string `json:"class,omitempty"`
	// QueueWaitMs is the longest any row of the request sat queued before
	// its batch dispatched; ExecuteMs the longest engine invocation it rode.
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	ExecuteMs   float64 `json:"execute_ms,omitempty"`
	// TraceID correlates this response with /debug/traces and slog records
	// across tiers (also echoed as the X-Radix-Trace-Id header); Spans is
	// the per-stage timing breakdown — admission plus the five scheduler
	// stages (queue, assemble, lease, execute, deliver).
	TraceID string     `json:"trace_id,omitempty"`
	Spans   []obs.Span `json:"spans,omitempty"`
	Active  []bool     `json:"active,omitempty"`
	Argmax  []int      `json:"argmax,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx API response. Model is
// set on errors scoped to a resolved model (backpressure, shutdown, engine
// failure) and Class on errors scoped to a scheduling class (per-class
// backpressure, deadline expiry), so clients and the cluster router can
// attribute the failure without reparsing their request.
type ErrorResponse struct {
	Error string `json:"error"`
	Model string `json:"model,omitempty"`
	Class string `json:"class,omitempty"`
}

// RegisterRequest is the POST /v1/models (register) and
// PUT /v1/models/{name} (hot-reload) body. Config is a RadiX-Net
// configuration in the graphio JSON wire format. The policy fields apply
// only to registration (a reload keeps the model's batcher and policy);
// zero policy fields take the server registry's defaults.
type RegisterRequest struct {
	// Name is the model's registry name. Required for POST /v1/models;
	// ignored on PUT, where the path names the model.
	Name string `json:"name,omitempty"`
	// Config is the graphio config JSON ({"systems":[[...]],"shape":[...]}).
	Config json.RawMessage `json:"config"`
	// Engines sizes the warm engine pool. On registration, min 1; on
	// reload, 0 (or omitted) keeps the model's current pool size.
	Engines int `json:"engines,omitempty"`
	// Kernel selects the inference kernel family: "csc" pins the generic
	// kernels, "radix" demands the structure-aware butterfly kernel (422 if
	// the config does not compile to verified stride plans), "auto" resolves
	// to radix when the plans verify. Unknown names are refused with 422.
	// Empty means "auto" on registration and "keep the model's kernel" on
	// reload.
	Kernel string `json:"kernel,omitempty"`
	// MaxBatch, MaxLatencyMs, QueueDepth, Workers, Share override the
	// batching policy at registration.
	MaxBatch     int     `json:"max_batch,omitempty"`
	MaxLatencyMs float64 `json:"max_latency_ms,omitempty"`
	QueueDepth   int     `json:"queue_depth,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	Share        int     `json:"share,omitempty"`
}

// AdminResponse is the success body of DELETE /v1/models/{name}.
type AdminResponse struct {
	Model  string `json:"model"`
	Status string `json:"status"`
}

// Server exposes a Registry over HTTP: POST /v1/infer, GET /v1/models,
// GET /healthz, GET /metrics, plus the model control plane —
// POST /v1/models (register), PUT /v1/models/{name} (atomic hot-reload),
// DELETE /v1/models/{name} (unregister). Construct with NewServer, start
// with Start or ListenAndServe, stop with Shutdown.
type Server struct {
	reg   *Registry
	http  *http.Server
	start time.Time

	// draining is set at Shutdown entry, before the listener closes, so
	// health probes racing the drain window already see 503 and the
	// cluster tier routes around this backend proactively.
	draining atomic.Bool

	// HTTP-level counters by status class, exported on /metrics.
	status2xx, status4xx, status5xx atomic.Int64

	// Observability surface: recent-request trace ring (GET /debug/traces),
	// slow-request threshold, and the slog destination for slow records.
	traces *obs.TraceRing
	slow   time.Duration
	log    *slog.Logger

	// scrapeMu serializes /metrics renders: the windowed-max gauges
	// rotate their scrape window during the render, so two racing
	// scrapers must take turns or one of them observes a half-rotated
	// (empty) window.
	scrapeMu sync.Mutex

	// slo evaluates the configured objectives against this node's own
	// histogram snapshots; nil when no objectives were configured.
	slo *slo.Engine

	// zone is the failure domain self-reported on /healthz ("" = unzoned).
	zone string
}

// ServerOptions configures a Server's observability surface. The zero
// value is the production default: tracing on (bounded ring), pprof off,
// slow-request logging off.
type ServerOptions struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ on the server mux.
	// Opt-in: profiling endpoints expose stacks and heap contents, so they
	// stay off unless an operator asks.
	Pprof bool
	// SlowRequest logs any /v1/infer request slower than this threshold
	// via slog, with the trace ID and full span breakdown. 0 disables.
	SlowRequest time.Duration
	// TraceDepth bounds the /debug/traces ring (0 → obs.DefaultTraceDepth).
	TraceDepth int
	// Logger receives slow-request records; nil selects slog.Default().
	Logger *slog.Logger
	// SLO configures burn-rate objectives evaluated on GET /v1/slo and
	// exported as radixserve_slo_* gauges; no objectives disables both.
	SLO slo.Config
	// Zone is this backend's failure domain (rack, availability zone),
	// self-reported on GET /healthz so the cluster router's zone-aware
	// placement can spread a model's replicas across domains. Empty opts
	// out: the backend places like an unzoned node.
	Zone string
}

// NewServer wraps the registry in an HTTP server bound to addr (host:port;
// ":0" picks an ephemeral port at Start) with default observability.
func NewServer(reg *Registry, addr string) *Server {
	return NewServerOpts(reg, addr, ServerOptions{})
}

// NewServerOpts is NewServer with an explicit observability configuration.
func NewServerOpts(reg *Registry, addr string, opts ServerOptions) *Server {
	s := &Server{
		reg:    reg,
		start:  time.Now(),
		traces: obs.NewTraceRing(opts.TraceDepth),
		slow:   opts.SlowRequest,
		log:    opts.Logger,
		slo:    slo.New(opts.SLO),
		zone:   opts.Zone,
	}
	if s.log == nil {
		s.log = slog.Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /v1/models", s.handleRegister)
	mux.HandleFunc("PUT /v1/models/{name}", s.handleReload)
	mux.HandleFunc("DELETE /v1/models/{name}", s.handleUnregister)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.Handle("GET /debug/traces", s.traces.Handler())
	if opts.Pprof {
		obs.RegisterPprof(mux)
	}
	s.http = &http.Server{
		Addr:              addr,
		Handler:           s.countStatus(mux),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Traces exposes the server's trace ring (for embedding and tests).
func (s *Server) Traces() *obs.TraceRing { return s.traces }

// Handler returns the server's root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.http.Handler }

// Start listens on the configured address and serves in the background,
// returning the bound address (useful with ":0").
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails fatally before Shutdown; surface it loudly
			// rather than dying silent.
			panic(fmt.Sprintf("serve: http server failed: %v", err))
		}
	}()
	return ln.Addr().String(), nil
}

// ListenAndServe serves on the configured address until Shutdown, returning
// http.ErrServerClosed on a clean stop.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }

// Shutdown stops the server gracefully: stop accepting connections, wait
// (bounded by ctx) for in-flight requests, then close the registry — new
// submissions fail with ErrClosed while rows already accepted drain through
// the engines.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.http.Shutdown(ctx)
	s.reg.Close()
	return err
}

// statusRecorder captures the response status for the server's counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher to the underlying writer when it supports
// flushing, so streaming/long-poll handlers behind the status middleware
// keep their flushes instead of silently buffering. A no-op otherwise —
// matching net/http's own contract that Flush may do nothing.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, the
// modern way for handlers to reach Flush/SetWriteDeadline through wrappers.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (s *Server) countStatus(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		switch {
		case rec.code < 400:
			s.status2xx.Add(1)
		case rec.code < 500:
			s.status4xx.Add(1)
		default:
			s.status5xx.Add(1)
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeModelError(w http.ResponseWriter, code int, model string, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...), Model: model})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	traceID := r.Header.Get(obs.HeaderTraceID)
	if traceID == "" {
		// No upstream router: this server is the edge and mints the ID.
		traceID = obs.NewTraceID()
	}
	w.Header().Set(obs.HeaderTraceID, traceID)
	// finish retains the request in the trace ring and, past the slow
	// threshold, logs the span breakdown with the trace ID — the same ID
	// the router logs, so one grep correlates both tiers.
	finish := func(status int, model, class string, rows int, errStr string, spans []obs.Span) {
		total := time.Since(t0)
		tr := &obs.Trace{
			ID: traceID, Model: model, Class: class, Start: t0,
			TotalMs: float64(total.Nanoseconds()) / 1e6,
			Status:  status, Rows: rows, Error: errStr, Spans: spans,
		}
		s.traces.Add(tr)
		if s.slow > 0 && total >= s.slow {
			s.log.Warn("slow request",
				"trace_id", traceID, "model", model, "class", class,
				"status", status, "rows", rows, "total_ms", tr.TotalMs,
				"spans", tr.SpanLine())
		}
	}
	var req InferRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		finish(http.StatusBadRequest, "", "", 0, err.Error(), nil)
		return
	}
	m, ok := s.reg.Model(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q", req.Model)
		finish(http.StatusNotFound, req.Model, "", 0, "unknown model", nil)
		return
	}
	if len(req.Inputs) == 0 {
		writeError(w, http.StatusBadRequest, "empty inputs")
		finish(http.StatusBadRequest, req.Model, "", 0, "empty inputs", nil)
		return
	}
	// Router-forwarded QoS metadata wins over the body: the class header
	// carries the canonical class the router peeked, the deadline header
	// the REMAINING budget after upstream queueing and failover attempts.
	class := req.Class
	if h := r.Header.Get(HeaderClass); h != "" {
		class = h
	}
	class, err := m.ResolveClass(class)
	if err != nil {
		// Unknown class is a deterministic client error: refuse before any
		// row is queued, like an unparseable config on the admin plane.
		writeJSON(w, http.StatusUnprocessableEntity,
			ErrorResponse{Error: err.Error(), Model: m.Name(), Class: req.Class})
		finish(http.StatusUnprocessableEntity, m.Name(), req.Class, len(req.Inputs), err.Error(), nil)
		return
	}
	deadlineMs := req.DeadlineMs
	if h := r.Header.Get(HeaderDeadlineMs); h != "" {
		if v, perr := strconv.ParseFloat(h, 64); perr == nil {
			deadlineMs = v
		}
	}
	// Everything from arrival to submission — decode, model/class resolve,
	// deadline math — is the admission span; the scheduler spans chain on.
	admission := obs.MkSpan("admission", 0, time.Since(t0))
	qreq := &Request{Rows: req.Inputs, Class: class, Deadline: DeadlineFromMs(deadlineMs), TraceID: traceID}
	qresp, err := m.Do(r.Context(), qreq)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			// The canonical backpressure response: bounded per-class queue,
			// explicit shed, client retries with backoff. The model and
			// class in the body let a router back off the one saturated
			// queue rather than the whole backend; Retry-After is derived
			// from the queue's depth and drain rate so the router's backoff
			// path engages with a real number.
			w.Header().Set("Retry-After", strconv.Itoa(m.RetryAfterSeconds(class)))
			writeJSON(w, http.StatusTooManyRequests,
				ErrorResponse{Error: fmt.Sprintf("model %q: %v", m.Name(), err), Model: m.Name(), Class: class})
		case errors.Is(err, ErrDeadlineExceeded):
			// The request's own deadline expired while its rows were queued:
			// they were shed, not executed. 504 tells the client (or router)
			// the budget ran out server-side.
			writeJSON(w, http.StatusGatewayTimeout,
				ErrorResponse{Error: err.Error(), Model: m.Name(), Class: class})
		case errors.Is(err, ErrClosed):
			writeModelError(w, http.StatusServiceUnavailable, m.Name(), "%v", err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away; the status is moot but keep the counter
			// classes honest.
			writeModelError(w, http.StatusServiceUnavailable, m.Name(), "%v", err)
		default:
			writeModelError(w, http.StatusBadRequest, m.Name(), "%v", err)
		}
		finish(errStatus(err), m.Name(), class, len(req.Inputs), err.Error(), []obs.Span{admission})
		return
	}
	// Chain the scheduler spans after admission so start offsets read as
	// one request timeline.
	spans := make([]obs.Span, 0, len(qresp.Spans)+1)
	spans = append(spans, admission)
	for _, sp := range qresp.Spans {
		sp.StartMs += admission.DurMs
		spans = append(spans, sp)
	}
	outs := qresp.Outputs
	resp := InferResponse{
		Model:       m.Name(),
		Rows:        len(outs),
		Outputs:     outs,
		Class:       qresp.Class,
		QueueWaitMs: float64(qresp.QueueWait) / float64(time.Millisecond),
		ExecuteMs:   float64(qresp.Execute) / float64(time.Millisecond),
		TraceID:     qresp.TraceID,
		Spans:       spans,
	}
	if req.Categories {
		resp.Active = make([]bool, len(outs))
		resp.Argmax = make([]int, len(outs))
		for i, row := range outs {
			best := 0
			for c, v := range row {
				if v > 0 {
					resp.Active[i] = true
				}
				if v > row[best] {
					best = c
				}
			}
			resp.Argmax[i] = best
		}
	}
	// The compact span breakdown rides the response headers so an
	// upstream router can graft this backend's queue/execute spans into
	// its own trace (stitched distributed tracing without a collector).
	if enc := obs.EncodeSpans(spans); enc != "" {
		w.Header().Set(obs.HeaderSpans, enc)
	}
	writeJSON(w, http.StatusOK, resp)
	finish(http.StatusOK, m.Name(), qresp.Class, len(outs), "", spans)
}

// errStatus maps a Model.Do error to the HTTP status handleInfer writes
// for it — the trace ring records the same status the client saw.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrClosed),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]ModelInfo{"models": s.reg.List()})
}

// decodeRegisterRequest reads and validates an admin body shared by
// register and reload: well-formed JSON (else 400 was written) with a
// parseable config (else 422 was written). Returns ok=false once a
// response has been written.
func decodeRegisterRequest(w http.ResponseWriter, r *http.Request) (req RegisterRequest, ok bool) {
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return req, false
	}
	if len(req.Config) == 0 {
		writeError(w, http.StatusUnprocessableEntity, "missing config")
		return req, false
	}
	return req, true
}

// adminPolicy maps a request's policy overrides to a Policy; all-zero means
// "use the registry default".
func (req RegisterRequest) adminPolicy() (Policy, bool) {
	pol := Policy{
		MaxBatch:   req.MaxBatch,
		MaxLatency: time.Duration(req.MaxLatencyMs * float64(time.Millisecond)),
		QueueDepth: req.QueueDepth,
		Workers:    req.Workers,
		Share:      req.Share,
	}
	return pol, pol != Policy{}
}

// writeAdminError maps control-plane registry errors to status codes:
// 409 duplicate, 404 unknown, 503 draining, 422 anything the config or
// shape check refused.
func writeAdminError(w http.ResponseWriter, model string, err error) {
	switch {
	case errors.Is(err, ErrAlreadyRegistered):
		writeModelError(w, http.StatusConflict, model, "%v", err)
	case errors.Is(err, ErrNotRegistered):
		writeModelError(w, http.StatusNotFound, model, "%v", err)
	case errors.Is(err, ErrClosed):
		writeModelError(w, http.StatusServiceUnavailable, model, "%v", err)
	default:
		writeModelError(w, http.StatusUnprocessableEntity, model, "%v", err)
	}
}

// handleRegister is POST /v1/models: build the model from graphio config
// JSON and put it in rotation. 201 on success; 409 if the name is taken,
// 422 on an unusable config, 503 while draining.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRegisterRequest(w, r)
	if !ok {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusUnprocessableEntity, "missing model name")
		return
	}
	cfg, err := graphio.UnmarshalConfig(req.Config)
	if err != nil {
		writeModelError(w, http.StatusUnprocessableEntity, req.Name, "bad config: %v", err)
		return
	}
	kind, err := infer.ParseKernel(req.Kernel)
	if err != nil {
		writeModelError(w, http.StatusUnprocessableEntity, req.Name, "%v", err)
		return
	}
	var m *Model
	if pol, override := req.adminPolicy(); override {
		m, err = s.reg.RegisterWithPolicyKernel(req.Name, cfg, req.Engines, pol, kind)
	} else {
		m, err = s.reg.RegisterKernel(req.Name, cfg, req.Engines, kind)
	}
	if err != nil {
		writeAdminError(w, req.Name, err)
		return
	}
	writeJSON(w, http.StatusCreated, m.Info())
}

// handleReload is PUT /v1/models/{name}: atomically hot-swap the model's
// engine pool for one built from the request config. In-flight and queued
// rows are unaffected — they finish on whichever generation their batch
// leases. 200 with the new ModelInfo on success; 404 unknown model, 422 on
// an unusable or shape-changing config, 503 while draining.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	req, ok := decodeRegisterRequest(w, r)
	if !ok {
		return
	}
	var m *Model
	var err error
	if req.Kernel == "" {
		// No kernel named: the reload keeps the model's requested kernel, so
		// a weights-only reload of a CSC-pinned model stays CSC.
		m, err = s.reg.ReloadJSON(name, req.Config, req.Engines)
	} else {
		kind, perr := infer.ParseKernel(req.Kernel)
		if perr != nil {
			writeModelError(w, http.StatusUnprocessableEntity, name, "%v", perr)
			return
		}
		m, err = s.reg.ReloadJSONKernel(name, req.Config, req.Engines, kind)
	}
	if err != nil {
		writeAdminError(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, m.Info())
}

// handleUnregister is DELETE /v1/models/{name}: drain the model and remove
// it. 200 on success (the response is written only after the drain, so a
// 200 means the model is fully gone); 404 unknown model, 503 while
// draining for shutdown.
func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Unregister(name); err != nil {
		writeAdminError(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, AdminResponse{Model: name, Status: "unregistered"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Models:        len(s.reg.List()),
		Zone:          s.zone,
	}
	if s.draining.Load() || s.reg.Closed() {
		// Graceful shutdown in progress: answer probes honestly so the
		// cluster tier routes around this backend before its listener dies,
		// instead of keeping it in rotation until forwards start failing.
		h.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// One scraper at a time: the maxwindow gauges rotate their window as
	// they render, so concurrent scrapes must serialize or a racing
	// scraper steals the window the other was about to read.
	s.scrapeMu.Lock()
	writePrometheus(w, s.reg.all())
	s.scrapeMu.Unlock()
	fmt.Fprintf(w, "# HELP radixserve_http_responses_total HTTP responses by status class.\n# TYPE radixserve_http_responses_total counter\n")
	fmt.Fprintf(w, "radixserve_http_responses_total{class=\"2xx\"} %d\n", s.status2xx.Load())
	fmt.Fprintf(w, "radixserve_http_responses_total{class=\"4xx\"} %d\n", s.status4xx.Load())
	fmt.Fprintf(w, "radixserve_http_responses_total{class=\"5xx\"} %d\n", s.status5xx.Load())
	fmt.Fprintf(w, "# HELP radixserve_uptime_seconds Server uptime.\n# TYPE radixserve_uptime_seconds gauge\nradixserve_uptime_seconds %g\n",
		time.Since(s.start).Seconds())
	if s.slo != nil {
		WriteSLOMetrics(w, "radixserve", s.sloEvaluate())
	}
	obs.WriteRuntimeMetrics(w, "radixserve")
}

// sloRecord feeds the SLO engine one cumulative sample per model (the
// aggregate series, class "") and per model×class, all from this node's
// own lock-free histograms — the same numbers /metrics exports.
func (s *Server) sloRecord(now time.Time) {
	for _, m := range s.reg.all() {
		met := &m.met
		s.slo.Record(m.name, "", slo.Sample{
			Hist:  met.LatencyHist.Snapshot().Scraped(1e9),
			Bad:   uint64(max64(met.Failed.Load(), 0) + max64(met.Expired.Load(), 0) + max64(met.Rejected.Load(), 0)),
			Total: uint64(max64(met.Accepted.Load(), 0) + max64(met.Rejected.Load(), 0)),
		}, now)
		for c := 0; c < m.qos.size(); c++ {
			cm := met.class(c)
			s.slo.Record(m.name, m.qos.name(c), slo.Sample{
				Hist:  cm.LatencyHist.Snapshot().Scraped(1e9),
				Bad:   uint64(max64(cm.Expired.Load(), 0) + max64(cm.Rejected.Load(), 0)),
				Total: uint64(max64(cm.Accepted.Load(), 0) + max64(cm.Rejected.Load(), 0)),
			}, now)
		}
	}
}

func max64(v, floor int64) int64 {
	if v < floor {
		return floor
	}
	return v
}

// sloEvaluate records fresh samples and evaluates every objective.
func (s *Server) sloEvaluate() []slo.Status {
	now := time.Now()
	s.sloRecord(now)
	return s.slo.Evaluate(now)
}

// handleSLO is GET /v1/slo: the burn-rate evaluation of every configured
// objective against this node's own traffic. 404 when no objectives are
// configured (the endpoint is off, not empty).
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		writeError(w, http.StatusNotFound, "no SLO objectives configured")
		return
	}
	now := time.Now()
	s.sloRecord(now)
	writeJSON(w, http.StatusOK, s.slo.ViewOf(now))
}

// WriteSLOMetrics renders one evaluation as prefix_slo_* gauge families;
// shared with the router tier (prefix "radixrouter").
func WriteSLOMetrics(w io.Writer, prefix string, statuses []slo.Status) {
	type fam struct {
		name, help string
		value      func(st slo.Status) float64
	}
	fams := []fam{
		{"slo_fast_burn", "Error-budget burn rate over the fast window (1 = sustainable).",
			func(st slo.Status) float64 { return st.FastBurn }},
		{"slo_slow_burn", "Error-budget burn rate over the slow window (1 = sustainable).",
			func(st slo.Status) float64 { return st.SlowBurn }},
		{"slo_error_budget_remaining", "Error budget fraction left at the slow window's burn (clamped at 0).",
			func(st slo.Status) float64 { return st.BudgetRemaining }},
		{"slo_state", "Objective state: 0 ok, 1 warn, 2 violated.",
			func(st slo.Status) float64 { return float64(slo.StateValue(st.State)) }},
	}
	for _, f := range fams {
		name := prefix + "_" + f.name
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, f.help, name)
		for _, st := range statuses {
			fmt.Fprintf(w, "%s{objective=%q,model=%q,class=%q} %g\n", name, st.Objective.Name, st.Model, st.Class, f.value(st))
		}
	}
}
