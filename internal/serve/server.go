package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// maxRequestBody bounds a POST /v1/infer body; a full MaxBatch of rows at
// Graph Challenge widths is a few MB of JSON, so 64 MiB is generous.
const maxRequestBody = 64 << 20

// InferRequest is the POST /v1/infer body.
type InferRequest struct {
	// Model names a registered model.
	Model string `json:"model"`
	// Inputs are the request rows, each InputWidth long. Rows of one
	// request coalesce with concurrent requests' rows into shared engine
	// batches.
	Inputs [][]float64 `json:"inputs"`
	// Categories additionally reports, per row, whether any activation
	// survived (the Graph Challenge category criterion) and the argmax
	// neuron.
	Categories bool `json:"categories,omitempty"`
}

// InferResponse is the POST /v1/infer success body.
type InferResponse struct {
	Model   string      `json:"model"`
	Rows    int         `json:"rows"`
	Outputs [][]float64 `json:"outputs"`
	Active  []bool      `json:"active,omitempty"`
	Argmax  []int       `json:"argmax,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx API response. Model is
// set on errors scoped to a resolved model (backpressure, shutdown, engine
// failure) so clients and the cluster router can attribute the failure
// without reparsing their request.
type ErrorResponse struct {
	Error string `json:"error"`
	Model string `json:"model,omitempty"`
}

// Server exposes a Registry over HTTP: POST /v1/infer, GET /v1/models,
// GET /healthz, GET /metrics. Construct with NewServer, start with Start or
// ListenAndServe, stop with Shutdown.
type Server struct {
	reg   *Registry
	http  *http.Server
	start time.Time

	// HTTP-level counters by status class, exported on /metrics.
	status2xx, status4xx, status5xx atomic.Int64
}

// NewServer wraps the registry in an HTTP server bound to addr (host:port;
// ":0" picks an ephemeral port at Start).
func NewServer(reg *Registry, addr string) *Server {
	s := &Server{reg: reg, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.http = &http.Server{
		Addr:              addr,
		Handler:           s.countStatus(mux),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the server's root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.http.Handler }

// Start listens on the configured address and serves in the background,
// returning the bound address (useful with ":0").
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails fatally before Shutdown; surface it loudly
			// rather than dying silent.
			panic(fmt.Sprintf("serve: http server failed: %v", err))
		}
	}()
	return ln.Addr().String(), nil
}

// ListenAndServe serves on the configured address until Shutdown, returning
// http.ErrServerClosed on a clean stop.
func (s *Server) ListenAndServe() error { return s.http.ListenAndServe() }

// Shutdown stops the server gracefully: stop accepting connections, wait
// (bounded by ctx) for in-flight requests, then close the registry — new
// submissions fail with ErrClosed while rows already accepted drain through
// the engines.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.http.Shutdown(ctx)
	s.reg.Close()
	return err
}

// statusRecorder captures the response status for the server's counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) countStatus(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		switch {
		case rec.code < 400:
			s.status2xx.Add(1)
		case rec.code < 500:
			s.status4xx.Add(1)
		default:
			s.status5xx.Add(1)
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func writeModelError(w http.ResponseWriter, code int, model string, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...), Model: model})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	var req InferRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	m, ok := s.reg.Model(req.Model)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model %q", req.Model)
		return
	}
	if len(req.Inputs) == 0 {
		writeError(w, http.StatusBadRequest, "empty inputs")
		return
	}
	outs, err := m.InferBatch(r.Context(), req.Inputs)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			// The canonical backpressure response: bounded queue, explicit
			// shed, client retries with backoff. The model name in the body
			// lets a router back off the one saturated model rather than the
			// whole backend.
			w.Header().Set("Retry-After", "1")
			writeModelError(w, http.StatusTooManyRequests, m.Name(), "model %q: %v", m.Name(), err)
		case errors.Is(err, ErrClosed):
			writeModelError(w, http.StatusServiceUnavailable, m.Name(), "%v", err)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away; the status is moot but keep the counter
			// classes honest.
			writeModelError(w, http.StatusServiceUnavailable, m.Name(), "%v", err)
		default:
			writeModelError(w, http.StatusBadRequest, m.Name(), "%v", err)
		}
		return
	}
	resp := InferResponse{Model: m.Name(), Rows: len(outs), Outputs: outs}
	if req.Categories {
		resp.Active = make([]bool, len(outs))
		resp.Argmax = make([]int, len(outs))
		for i, row := range outs {
			best := 0
			for c, v := range row {
				if v > 0 {
					resp.Active[i] = true
				}
				if v > row[best] {
					best = c
				}
			}
			resp.Argmax[i] = best
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]ModelInfo{"models": s.reg.List()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Models:        len(s.reg.List()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	writePrometheus(w, s.reg.all())
	fmt.Fprintf(w, "# HELP radixserve_http_responses_total HTTP responses by status class.\n# TYPE radixserve_http_responses_total counter\n")
	fmt.Fprintf(w, "radixserve_http_responses_total{class=\"2xx\"} %d\n", s.status2xx.Load())
	fmt.Fprintf(w, "radixserve_http_responses_total{class=\"4xx\"} %d\n", s.status4xx.Load())
	fmt.Fprintf(w, "radixserve_http_responses_total{class=\"5xx\"} %d\n", s.status5xx.Load())
	fmt.Fprintf(w, "# HELP radixserve_uptime_seconds Server uptime.\n# TYPE radixserve_uptime_seconds gauge\nradixserve_uptime_seconds %g\n",
		time.Since(s.start).Seconds())
}
