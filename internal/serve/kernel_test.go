package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/radix"
)

// registerBodyKernel is registerBody plus an explicit kernel field.
func registerBodyKernel(t *testing.T, name string, cfg core.Config, engines int, kernel string) []byte {
	t.Helper()
	cfgJSON, err := graphio.MarshalConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(RegisterRequest{Name: name, Config: cfgJSON, Engines: engines, Kernel: kernel})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRegistryKernelSelection runs a CSC-pinned model and a radix model of
// the same config side by side in one registry and requires their served
// outputs to be bitwise identical — the fleet-level statement of the
// kernel bit-identity contract — then checks reload preserves a model's
// requested kernel unless the reload names a new one.
func TestRegistryKernelSelection(t *testing.T) {
	reg := NewRegistry(Policy{MaxBatch: 4, MaxLatency: time.Millisecond})
	defer reg.Close()
	cfg := testConfig(t)

	oracle, err := reg.RegisterKernel("oracle", cfg, 2, infer.KernelCSC)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := reg.RegisterKernel("fast", cfg, 2, infer.KernelRadix)
	if err != nil {
		t.Fatal(err)
	}
	if got := oracle.Kernel(); got != infer.KernelCSC {
		t.Fatalf("oracle kernel = %v, want csc", got)
	}
	if got := fast.Kernel(); got != infer.KernelRadix {
		t.Fatalf("fast kernel = %v, want radix", got)
	}
	// Default registration resolves Auto to radix for a config-built model.
	auto, err := reg.Register("auto", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := auto.Kernel(); got != infer.KernelRadix {
		t.Fatalf("auto-registered kernel = %v, want radix", got)
	}

	in, err := dataset.SparseBatch(8, oracle.InputWidth(), 5, 17)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, in.Rows())
	for r := range rows {
		rows[r] = in.RowSlice(r)
	}
	ctx := t.Context()
	cscOut, err := oracle.InferBatch(ctx, rows)
	if err != nil {
		t.Fatal(err)
	}
	radixOut, err := fast.InferBatch(ctx, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceOutputs(t, cfg, in)
	for r := range want {
		for c := range want[r] {
			if cscOut[r][c] != want[r][c] {
				t.Fatalf("csc model diverged from oracle at row %d col %d", r, c)
			}
			if radixOut[r][c] != want[r][c] {
				t.Fatalf("radix model diverged from oracle at row %d col %d: got %v want %v",
					r, c, radixOut[r][c], want[r][c])
			}
		}
	}

	// A kernel-less reload keeps the requested kernel on both models.
	if _, err := reg.Reload("oracle", cfg, 0); err != nil {
		t.Fatal(err)
	}
	if got := oracle.Kernel(); got != infer.KernelCSC {
		t.Fatalf("kernel after kernel-less reload = %v, want csc preserved", got)
	}
	if _, err := reg.Reload("fast", cfg, 0); err != nil {
		t.Fatal(err)
	}
	if got := fast.Kernel(); got != infer.KernelRadix {
		t.Fatalf("kernel after kernel-less reload = %v, want radix preserved", got)
	}
	// An explicit kernel on reload switches, and sticks for later reloads.
	if _, err := reg.ReloadKernel("oracle", cfg, 0, infer.KernelRadix); err != nil {
		t.Fatal(err)
	}
	if got := oracle.Kernel(); got != infer.KernelRadix {
		t.Fatalf("kernel after ReloadKernel = %v, want radix", got)
	}
	if _, err := reg.Reload("oracle", cfg, 0); err != nil {
		t.Fatal(err)
	}
	if got := oracle.Kernel(); got != infer.KernelRadix {
		t.Fatalf("kernel after follow-up reload = %v, want radix kept", got)
	}
	// The reloaded generation still serves bit-identically.
	out2, err := oracle.InferBatch(ctx, rows)
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		for c := range want[r] {
			if out2[r][c] != want[r][c] {
				t.Fatalf("post-reload radix outputs diverged at row %d col %d", r, c)
			}
		}
	}
}

// TestHTTPKernelField drives kernel selection over the wire: the register
// and list responses report the resolved kernel, an unknown kernel name is
// refused with 422 before any engine is built, and KernelRadix on a config
// the registry cannot prove radix-structured is a 422 too.
func TestHTTPKernelField(t *testing.T) {
	reg := NewRegistry(Policy{MaxBatch: 4, MaxLatency: time.Millisecond})
	s := NewServer(reg, "127.0.0.1:0")
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	cfg := testConfig(t)

	code, body := adminDo(t, http.MethodPost, ts.URL+"/v1/models", registerBodyKernel(t, "k", cfg, 1, "radix"))
	if code != http.StatusCreated {
		t.Fatalf("register kernel=radix: status %d: %s", code, body)
	}
	var info ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Kernel != "radix" {
		t.Fatalf("register info kernel = %q, want radix", info.Kernel)
	}

	if code, body = adminDo(t, http.MethodPost, ts.URL+"/v1/models", registerBodyKernel(t, "bad", cfg, 1, "simd")); code != http.StatusUnprocessableEntity {
		t.Fatalf("register unknown kernel: status %d: %s", code, body)
	}
	if _, ok := reg.Model("bad"); ok {
		t.Fatal("model with unknown kernel was registered")
	}
	if code, body = adminDo(t, http.MethodPut, ts.URL+"/v1/models/k", registerBodyKernel(t, "", cfg, 0, "simd")); code != http.StatusUnprocessableEntity {
		t.Fatalf("reload unknown kernel: status %d: %s", code, body)
	}

	// A Kronecker-lifted config compiles stride plans too (it just runs the
	// natural-order radix kernels instead of the Stockham chain), so
	// demanding radix on it succeeds, and csc still opts out.
	lifted, err := core.NewConfig([]radix.System{radix.MustNew(4, 4)}, []int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.RegisterKernel("lift-csc", lifted, 1, infer.KernelCSC); err != nil {
		t.Fatalf("csc on lifted config: %v", err)
	}
	if code, body = adminDo(t, http.MethodPost, ts.URL+"/v1/models", registerBodyKernel(t, "lift", lifted, 1, "radix")); code != http.StatusCreated {
		t.Fatalf("radix on lifted config: status %d: %s", code, body)
	}

	// GET /v1/models reports each model's resolved kernel.
	code, body = adminDo(t, http.MethodGet, ts.URL+"/v1/models", nil)
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var list map[string][]ModelInfo
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	kernels := map[string]string{}
	for _, mi := range list["models"] {
		kernels[mi.Name] = mi.Kernel
	}
	if kernels["k"] != "radix" || kernels["lift-csc"] != "csc" {
		t.Fatalf("listed kernels = %v", kernels)
	}
}
