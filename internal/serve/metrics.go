package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics counts one model's serving activity. All fields are atomic and
// updated lock-free on the hot path; read them with Load (or through
// Snapshot) at any time. The classes slice (one entry per registry class,
// in qosSet order) is sized at registration and never resized, so per-class
// counters are lock-free too.
type Metrics struct {
	Accepted    atomic.Int64 // rows admitted to a class queue
	Rejected    atomic.Int64 // rows refused with ErrQueueFull (backpressure)
	Completed   atomic.Int64 // rows inferred and delivered
	Failed      atomic.Int64 // rows failed (engine error or shutdown)
	Expired     atomic.Int64 // rows shed at dequeue for a passed deadline
	Batches     atomic.Int64 // engine invocations
	BatchedRows atomic.Int64 // rows across engine invocations
	ExecNs      atomic.Int64 // total engine-busy ns over invocations
	LatencyNs   atomic.Int64 // total enqueue→delivery ns over completed rows
	MaxLatency  atomic.Int64 // worst single-row enqueue→delivery ns
	Reloads     atomic.Int64 // engine-pool hot swaps (Registry.Reload)

	classes []ClassMetrics
}

// ClassMetrics counts one priority class's activity within a model.
type ClassMetrics struct {
	Accepted    atomic.Int64 // rows admitted to this class's queue
	Rejected    atomic.Int64 // rows refused: this class's queue was full
	Completed   atomic.Int64 // rows inferred and delivered
	Expired     atomic.Int64 // rows shed at dequeue for a passed deadline
	QueueWaitNs atomic.Int64 // total enqueue→dispatch ns over completed rows
	MaxWaitNs   atomic.Int64 // worst single-row enqueue→dispatch ns
}

// observeWait records one dispatched row's enqueue→dispatch queue wait.
func (c *ClassMetrics) observeWait(ns int64) {
	c.QueueWaitNs.Add(ns)
	for {
		old := c.MaxWaitNs.Load()
		if ns <= old || c.MaxWaitNs.CompareAndSwap(old, ns) {
			return
		}
	}
}

// class returns the per-class counters for a class id.
func (m *Metrics) class(i int) *ClassMetrics { return &m.classes[i] }

// MetricsSnapshot is a consistent-enough point-in-time copy of Metrics for
// reporting (fields are loaded individually; exactness across fields is not
// guaranteed under concurrent load).
type MetricsSnapshot struct {
	Accepted, Rejected, Completed, Failed int64
	Expired                               int64
	Batches, BatchedRows, Reloads         int64
	MeanBatch                             float64
	MeanLatency, MaxLatency               time.Duration
}

// Snapshot loads every counter and derives the mean batch size and mean
// per-row latency.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Accepted:    m.Accepted.Load(),
		Rejected:    m.Rejected.Load(),
		Completed:   m.Completed.Load(),
		Failed:      m.Failed.Load(),
		Expired:     m.Expired.Load(),
		Batches:     m.Batches.Load(),
		BatchedRows: m.BatchedRows.Load(),
		Reloads:     m.Reloads.Load(),
		MaxLatency:  time.Duration(m.MaxLatency.Load()),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.BatchedRows) / float64(s.Batches)
	}
	if s.Completed > 0 {
		s.MeanLatency = time.Duration(m.LatencyNs.Load() / s.Completed)
	}
	return s
}

// ClassSnapshot is a point-in-time copy of one class's counters.
type ClassSnapshot struct {
	Class                                  string
	Accepted, Rejected, Completed, Expired int64
	MeanQueueWait, MaxQueueWait            time.Duration
}

// ClassSnapshots reports every class's counters in the registry's class
// order (the Model's registry defines the class set).
func (m *Model) ClassSnapshots() []ClassSnapshot {
	out := make([]ClassSnapshot, m.qos.size())
	for i := range out {
		c := m.met.class(i)
		s := ClassSnapshot{
			Class:        m.qos.name(i),
			Accepted:     c.Accepted.Load(),
			Rejected:     c.Rejected.Load(),
			Completed:    c.Completed.Load(),
			Expired:      c.Expired.Load(),
			MaxQueueWait: time.Duration(c.MaxWaitNs.Load()),
		}
		if s.Completed > 0 {
			s.MeanQueueWait = time.Duration(c.QueueWaitNs.Load() / s.Completed)
		}
		out[i] = s
	}
	return out
}

// observe records one delivered row's enqueue→delivery latency.
func (m *Metrics) observe(ns int64) {
	m.LatencyNs.Add(ns)
	for {
		old := m.MaxLatency.Load()
		if ns <= old || m.MaxLatency.CompareAndSwap(old, ns) {
			return
		}
	}
}

// promMetric describes one exported Prometheus series.
type promMetric struct {
	name, help, typ string
	value           func(m *Metrics) float64
}

var promMetrics = []promMetric{
	{"radixserve_rows_accepted_total", "Rows admitted to the request queue.", "counter",
		func(m *Metrics) float64 { return float64(m.Accepted.Load()) }},
	{"radixserve_rows_rejected_total", "Rows rejected with backpressure (class queue full).", "counter",
		func(m *Metrics) float64 { return float64(m.Rejected.Load()) }},
	{"radixserve_rows_completed_total", "Rows inferred and delivered.", "counter",
		func(m *Metrics) float64 { return float64(m.Completed.Load()) }},
	{"radixserve_rows_failed_total", "Rows failed by engine error or shutdown.", "counter",
		func(m *Metrics) float64 { return float64(m.Failed.Load()) }},
	{"radixserve_rows_expired_total", "Rows shed at dequeue for a passed deadline (never executed).", "counter",
		func(m *Metrics) float64 { return float64(m.Expired.Load()) }},
	{"radixserve_batches_total", "Engine invocations (coalesced batches).", "counter",
		func(m *Metrics) float64 { return float64(m.Batches.Load()) }},
	{"radixserve_batched_rows_total", "Rows summed over engine invocations.", "counter",
		func(m *Metrics) float64 { return float64(m.BatchedRows.Load()) }},
	{"radixserve_engine_busy_seconds_total", "Engine time summed over invocations (drain-capacity basis).", "counter",
		func(m *Metrics) float64 { return float64(m.ExecNs.Load()) / 1e9 }},
	{"radixserve_request_latency_seconds_sum", "Total enqueue-to-delivery latency of completed rows.", "counter",
		func(m *Metrics) float64 { return float64(m.LatencyNs.Load()) / 1e9 }},
	{"radixserve_request_latency_seconds_max", "Worst single-row enqueue-to-delivery latency.", "gauge",
		func(m *Metrics) float64 { return float64(m.MaxLatency.Load()) / 1e9 }},
	{"radixserve_reloads_total", "Engine-pool hot swaps applied to the model.", "counter",
		func(m *Metrics) float64 { return float64(m.Reloads.Load()) }},
}

// promClassMetric describes one exported per-class Prometheus series.
type promClassMetric struct {
	name, help, typ string
	value           func(m *Model, class int) float64
}

var promClassMetrics = []promClassMetric{
	{"radixserve_class_rows_accepted_total", "Rows admitted to the class queue.", "counter",
		func(m *Model, c int) float64 { return float64(m.met.class(c).Accepted.Load()) }},
	{"radixserve_class_rows_rejected_total", "Rows rejected because the class queue was full.", "counter",
		func(m *Model, c int) float64 { return float64(m.met.class(c).Rejected.Load()) }},
	{"radixserve_class_rows_completed_total", "Rows inferred and delivered for the class.", "counter",
		func(m *Model, c int) float64 { return float64(m.met.class(c).Completed.Load()) }},
	{"radixserve_class_rows_expired_total", "Rows of the class shed at dequeue for a passed deadline.", "counter",
		func(m *Model, c int) float64 { return float64(m.met.class(c).Expired.Load()) }},
	{"radixserve_queue_wait_seconds_sum", "Total enqueue-to-dispatch queue wait of completed rows.", "counter",
		func(m *Model, c int) float64 { return float64(m.met.class(c).QueueWaitNs.Load()) / 1e9 }},
	{"radixserve_queue_wait_seconds_max", "Worst single-row enqueue-to-dispatch queue wait.", "gauge",
		func(m *Model, c int) float64 { return float64(m.met.class(c).MaxWaitNs.Load()) / 1e9 }},
	{"radixserve_class_queue_depth", "Rows currently queued in the class.", "gauge",
		func(m *Model, c int) float64 { return float64(m.bat.classDepth(c)) }},
}

// writePrometheus renders every model's counters in Prometheus text
// exposition format, one labeled series per model (and per model×class for
// the QoS series), plus per-model queue gauges.
func writePrometheus(w io.Writer, models []*Model) {
	for _, pm := range promMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", pm.name, pm.help, pm.name, pm.typ)
		for _, m := range models {
			fmt.Fprintf(w, "%s{model=%q} %g\n", pm.name, m.name, pm.value(&m.met))
		}
	}
	for _, pm := range promClassMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", pm.name, pm.help, pm.name, pm.typ)
		for _, m := range models {
			for c := 0; c < m.qos.size(); c++ {
				fmt.Fprintf(w, "%s{model=%q,class=%q} %g\n", pm.name, m.name, m.qos.name(c), pm.value(m, c))
			}
		}
	}
	fmt.Fprintf(w, "# HELP radixserve_queue_depth Pending rows in the request queues (all classes).\n# TYPE radixserve_queue_depth gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "radixserve_queue_depth{model=%q} %d\n", m.name, m.bat.depth())
	}
	fmt.Fprintf(w, "# HELP radixserve_queue_capacity Request queue bound summed over classes (depth/capacity is a valid utilization ratio; each class's own bound is capacity/classes).\n# TYPE radixserve_queue_capacity gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "radixserve_queue_capacity{model=%q} %d\n", m.name, m.qos.size()*m.pol.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP radixserve_model_generation Engine-pool generation (1 at registration, +1 per reload).\n# TYPE radixserve_model_generation gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "radixserve_model_generation{model=%q} %d\n", m.name, m.Generation())
	}
}
