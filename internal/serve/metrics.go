package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Metrics counts one model's serving activity. All fields are atomic and
// updated lock-free on the hot path; read them with Load (or through
// Snapshot) at any time.
type Metrics struct {
	Accepted    atomic.Int64 // rows admitted to the queue
	Rejected    atomic.Int64 // rows refused with ErrQueueFull (backpressure)
	Completed   atomic.Int64 // rows inferred and delivered
	Failed      atomic.Int64 // rows failed (engine error or shutdown)
	Batches     atomic.Int64 // engine invocations
	BatchedRows atomic.Int64 // rows across engine invocations
	LatencyNs   atomic.Int64 // total enqueue→delivery ns over completed rows
	MaxLatency  atomic.Int64 // worst single-row enqueue→delivery ns
	Reloads     atomic.Int64 // engine-pool hot swaps (Registry.Reload)
}

// MetricsSnapshot is a consistent-enough point-in-time copy of Metrics for
// reporting (fields are loaded individually; exactness across fields is not
// guaranteed under concurrent load).
type MetricsSnapshot struct {
	Accepted, Rejected, Completed, Failed int64
	Batches, BatchedRows, Reloads         int64
	MeanBatch                             float64
	MeanLatency, MaxLatency               time.Duration
}

// Snapshot loads every counter and derives the mean batch size and mean
// per-row latency.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Accepted:    m.Accepted.Load(),
		Rejected:    m.Rejected.Load(),
		Completed:   m.Completed.Load(),
		Failed:      m.Failed.Load(),
		Batches:     m.Batches.Load(),
		BatchedRows: m.BatchedRows.Load(),
		Reloads:     m.Reloads.Load(),
		MaxLatency:  time.Duration(m.MaxLatency.Load()),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.BatchedRows) / float64(s.Batches)
	}
	if s.Completed > 0 {
		s.MeanLatency = time.Duration(m.LatencyNs.Load() / s.Completed)
	}
	return s
}

// observe records one delivered row's enqueue→delivery latency.
func (m *Metrics) observe(ns int64) {
	m.LatencyNs.Add(ns)
	for {
		old := m.MaxLatency.Load()
		if ns <= old || m.MaxLatency.CompareAndSwap(old, ns) {
			return
		}
	}
}

// promMetric describes one exported Prometheus series.
type promMetric struct {
	name, help, typ string
	value           func(m *Metrics) float64
}

var promMetrics = []promMetric{
	{"radixserve_rows_accepted_total", "Rows admitted to the request queue.", "counter",
		func(m *Metrics) float64 { return float64(m.Accepted.Load()) }},
	{"radixserve_rows_rejected_total", "Rows rejected with backpressure (queue full).", "counter",
		func(m *Metrics) float64 { return float64(m.Rejected.Load()) }},
	{"radixserve_rows_completed_total", "Rows inferred and delivered.", "counter",
		func(m *Metrics) float64 { return float64(m.Completed.Load()) }},
	{"radixserve_rows_failed_total", "Rows failed by engine error or shutdown.", "counter",
		func(m *Metrics) float64 { return float64(m.Failed.Load()) }},
	{"radixserve_batches_total", "Engine invocations (coalesced batches).", "counter",
		func(m *Metrics) float64 { return float64(m.Batches.Load()) }},
	{"radixserve_batched_rows_total", "Rows summed over engine invocations.", "counter",
		func(m *Metrics) float64 { return float64(m.BatchedRows.Load()) }},
	{"radixserve_request_latency_seconds_sum", "Total enqueue-to-delivery latency of completed rows.", "counter",
		func(m *Metrics) float64 { return float64(m.LatencyNs.Load()) / 1e9 }},
	{"radixserve_request_latency_seconds_max", "Worst single-row enqueue-to-delivery latency.", "gauge",
		func(m *Metrics) float64 { return float64(m.MaxLatency.Load()) / 1e9 }},
	{"radixserve_reloads_total", "Engine-pool hot swaps applied to the model.", "counter",
		func(m *Metrics) float64 { return float64(m.Reloads.Load()) }},
}

// writePrometheus renders every model's counters in Prometheus text
// exposition format, one labeled series per model, plus per-model queue
// gauges.
func writePrometheus(w io.Writer, models []*Model) {
	for _, pm := range promMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", pm.name, pm.help, pm.name, pm.typ)
		for _, m := range models {
			fmt.Fprintf(w, "%s{model=%q} %g\n", pm.name, m.name, pm.value(&m.met))
		}
	}
	fmt.Fprintf(w, "# HELP radixserve_queue_depth Pending rows in the request queue.\n# TYPE radixserve_queue_depth gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "radixserve_queue_depth{model=%q} %d\n", m.name, len(m.bat.queue))
	}
	fmt.Fprintf(w, "# HELP radixserve_queue_capacity Request queue bound (backpressure threshold).\n# TYPE radixserve_queue_capacity gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "radixserve_queue_capacity{model=%q} %d\n", m.name, cap(m.bat.queue))
	}
	fmt.Fprintf(w, "# HELP radixserve_model_generation Engine-pool generation (1 at registration, +1 per reload).\n# TYPE radixserve_model_generation gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "radixserve_model_generation{model=%q} %d\n", m.name, m.Generation())
	}
}
