package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/obs"
)

// Metrics counts one model's serving activity. All fields are atomic and
// updated lock-free on the hot path; read them with Load (or through
// Snapshot) at any time. The classes slice (one entry per registry class,
// in qosSet order) is sized at registration and never resized, so per-class
// counters are lock-free too.
type Metrics struct {
	Accepted    atomic.Int64 // rows admitted to a class queue
	Rejected    atomic.Int64 // rows refused with ErrQueueFull (backpressure)
	Completed   atomic.Int64 // rows inferred and delivered
	Failed      atomic.Int64 // rows failed (engine error or shutdown)
	Expired     atomic.Int64 // rows shed at dequeue for a passed deadline
	Batches     atomic.Int64 // engine invocations
	BatchedRows atomic.Int64 // rows across engine invocations
	ExecNs      atomic.Int64 // total engine-busy ns over invocations
	LatencyNs   atomic.Int64 // total enqueue→delivery ns over completed rows
	MaxLatency  atomic.Int64 // worst single-row enqueue→delivery ns (all-time)
	Reloads     atomic.Int64 // engine-pool hot swaps (Registry.Reload)

	// LatencyHist buckets every completed row's enqueue→delivery latency
	// (ns); ExecHist buckets engine invocation time per batch. Both are
	// lock-free log2 histograms exported as Prometheus histogram families,
	// the distribution view behind the sums/maxima above. BatchHist
	// buckets the rows-per-engine-invocation distribution (unit: rows),
	// the shape behind the MeanBatch point value.
	LatencyHist obs.Histogram
	ExecHist    obs.Histogram
	BatchHist   obs.Histogram
	// WinLatency is the scrape-windowed worst latency: unlike MaxLatency
	// it rotates on scrape, so long-lived fleets stop reporting an
	// all-time worst forever.
	WinLatency obs.WindowedMax

	classes []ClassMetrics
}

// ClassMetrics counts one priority class's activity within a model.
type ClassMetrics struct {
	Accepted    atomic.Int64 // rows admitted to this class's queue
	Rejected    atomic.Int64 // rows refused: this class's queue was full
	Completed   atomic.Int64 // rows inferred and delivered
	Expired     atomic.Int64 // rows shed at dequeue for a passed deadline
	QueueWaitNs atomic.Int64 // total enqueue→dispatch ns over completed rows
	MaxWaitNs   atomic.Int64 // worst single-row enqueue→dispatch ns (all-time)

	// WaitHist buckets queue waits (ns) for quantile extraction — the
	// distribution the 25ms interactive p99 invariant and the Retry-After
	// hint are read from. WinWait is the scrape-windowed worst wait.
	// LatencyHist buckets the class's end-to-end enqueue→delivery latency
	// (ns) — the per-model×class distribution latency SLOs evaluate.
	WaitHist    obs.Histogram
	WinWait     obs.WindowedMax
	LatencyHist obs.Histogram
}

// observeWait records one dispatched row's enqueue→dispatch queue wait,
// stamping the wait bucket's exemplar with the row's trace ID.
func (c *ClassMetrics) observeWait(ns int64, traceID string) {
	c.QueueWaitNs.Add(ns)
	c.WaitHist.ObserveTraced(ns, traceID)
	c.WinWait.Observe(ns)
	for {
		old := c.MaxWaitNs.Load()
		if ns <= old || c.MaxWaitNs.CompareAndSwap(old, ns) {
			return
		}
	}
}

// class returns the per-class counters for a class id.
func (m *Metrics) class(i int) *ClassMetrics { return &m.classes[i] }

// MetricsSnapshot is a consistent-enough point-in-time copy of Metrics for
// reporting (fields are loaded individually; exactness across fields is not
// guaranteed under concurrent load).
type MetricsSnapshot struct {
	Accepted, Rejected, Completed, Failed int64
	Expired                               int64
	Batches, BatchedRows, Reloads         int64
	MeanBatch                             float64
	MeanLatency, MaxLatency               time.Duration
	// LatencyP50/P90/P99 are histogram-derived end-to-end latency
	// quantiles over all completed rows (log2-bucket resolution).
	LatencyP50, LatencyP90, LatencyP99 time.Duration
	// WindowMaxLatency is the worst latency over the recent scrape
	// windows — the resettable alternative to the all-time MaxLatency.
	WindowMaxLatency time.Duration
}

// Snapshot loads every counter and derives the mean batch size and mean
// per-row latency.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Accepted:    m.Accepted.Load(),
		Rejected:    m.Rejected.Load(),
		Completed:   m.Completed.Load(),
		Failed:      m.Failed.Load(),
		Expired:     m.Expired.Load(),
		Batches:     m.Batches.Load(),
		BatchedRows: m.BatchedRows.Load(),
		Reloads:     m.Reloads.Load(),
		MaxLatency:  time.Duration(m.MaxLatency.Load()),
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(s.BatchedRows) / float64(s.Batches)
	}
	if s.Completed > 0 {
		s.MeanLatency = time.Duration(m.LatencyNs.Load() / s.Completed)
	}
	lh := m.LatencyHist.Snapshot()
	s.LatencyP50 = time.Duration(lh.Quantile(0.50))
	s.LatencyP90 = time.Duration(lh.Quantile(0.90))
	s.LatencyP99 = time.Duration(lh.Quantile(0.99))
	s.WindowMaxLatency = time.Duration(m.WinLatency.Value())
	return s
}

// ClassSnapshot is a point-in-time copy of one class's counters.
type ClassSnapshot struct {
	Class                                  string
	Accepted, Rejected, Completed, Expired int64
	MeanQueueWait, MaxQueueWait            time.Duration
	// WaitP50/P90/P99 are histogram-derived queue-wait quantiles;
	// WindowMaxQueueWait is the recent-scrape-window worst wait.
	WaitP50, WaitP90, WaitP99 time.Duration
	WindowMaxQueueWait        time.Duration
}

// ClassSnapshots reports every class's counters in the registry's class
// order (the Model's registry defines the class set).
func (m *Model) ClassSnapshots() []ClassSnapshot {
	out := make([]ClassSnapshot, m.qos.size())
	for i := range out {
		c := m.met.class(i)
		s := ClassSnapshot{
			Class:        m.qos.name(i),
			Accepted:     c.Accepted.Load(),
			Rejected:     c.Rejected.Load(),
			Completed:    c.Completed.Load(),
			Expired:      c.Expired.Load(),
			MaxQueueWait: time.Duration(c.MaxWaitNs.Load()),
		}
		if s.Completed > 0 {
			s.MeanQueueWait = time.Duration(c.QueueWaitNs.Load() / s.Completed)
		}
		wh := c.WaitHist.Snapshot()
		s.WaitP50 = time.Duration(wh.Quantile(0.50))
		s.WaitP90 = time.Duration(wh.Quantile(0.90))
		s.WaitP99 = time.Duration(wh.Quantile(0.99))
		s.WindowMaxQueueWait = time.Duration(c.WinWait.Value())
		out[i] = s
	}
	return out
}

// observe records one delivered row's enqueue→delivery latency,
// stamping the latency bucket's exemplar with the row's trace ID.
func (m *Metrics) observe(ns int64, traceID string) {
	m.LatencyNs.Add(ns)
	m.LatencyHist.ObserveTraced(ns, traceID)
	m.WinLatency.Observe(ns)
	for {
		old := m.MaxLatency.Load()
		if ns <= old || m.MaxLatency.CompareAndSwap(old, ns) {
			return
		}
	}
}

// promMetric describes one exported Prometheus series.
type promMetric struct {
	name, help, typ string
	value           func(m *Metrics) float64
}

var promMetrics = []promMetric{
	{"radixserve_rows_accepted_total", "Rows admitted to the request queue.", "counter",
		func(m *Metrics) float64 { return float64(m.Accepted.Load()) }},
	{"radixserve_rows_rejected_total", "Rows rejected with backpressure (class queue full).", "counter",
		func(m *Metrics) float64 { return float64(m.Rejected.Load()) }},
	{"radixserve_rows_completed_total", "Rows inferred and delivered.", "counter",
		func(m *Metrics) float64 { return float64(m.Completed.Load()) }},
	{"radixserve_rows_failed_total", "Rows failed by engine error or shutdown.", "counter",
		func(m *Metrics) float64 { return float64(m.Failed.Load()) }},
	{"radixserve_rows_expired_total", "Rows shed at dequeue for a passed deadline (never executed).", "counter",
		func(m *Metrics) float64 { return float64(m.Expired.Load()) }},
	{"radixserve_batches_total", "Engine invocations (coalesced batches).", "counter",
		func(m *Metrics) float64 { return float64(m.Batches.Load()) }},
	{"radixserve_batched_rows_total", "Rows summed over engine invocations.", "counter",
		func(m *Metrics) float64 { return float64(m.BatchedRows.Load()) }},
	{"radixserve_engine_busy_seconds_total", "Engine time summed over invocations (drain-capacity basis).", "counter",
		func(m *Metrics) float64 { return float64(m.ExecNs.Load()) / 1e9 }},
	// radixserve_request_latency_seconds{_bucket,_sum,_count} are emitted
	// as a histogram family below; only the maxima remain point series.
	{"radixserve_request_latency_seconds_max", "Worst single-row enqueue-to-delivery latency (all-time).", "gauge",
		func(m *Metrics) float64 { return float64(m.MaxLatency.Load()) / 1e9 }},
	{"radixserve_request_latency_seconds_maxwindow", "Worst single-row enqueue-to-delivery latency over the recent scrape windows (rotates on scrape).", "gauge",
		func(m *Metrics) float64 { return float64(m.WinLatency.Rotate()) / 1e9 }},
	{"radixserve_reloads_total", "Engine-pool hot swaps applied to the model.", "counter",
		func(m *Metrics) float64 { return float64(m.Reloads.Load()) }},
}

// promClassMetric describes one exported per-class Prometheus series.
type promClassMetric struct {
	name, help, typ string
	value           func(m *Model, class int) float64
}

var promClassMetrics = []promClassMetric{
	{"radixserve_class_rows_accepted_total", "Rows admitted to the class queue.", "counter",
		func(m *Model, c int) float64 { return float64(m.met.class(c).Accepted.Load()) }},
	{"radixserve_class_rows_rejected_total", "Rows rejected because the class queue was full.", "counter",
		func(m *Model, c int) float64 { return float64(m.met.class(c).Rejected.Load()) }},
	{"radixserve_class_rows_completed_total", "Rows inferred and delivered for the class.", "counter",
		func(m *Model, c int) float64 { return float64(m.met.class(c).Completed.Load()) }},
	{"radixserve_class_rows_expired_total", "Rows of the class shed at dequeue for a passed deadline.", "counter",
		func(m *Model, c int) float64 { return float64(m.met.class(c).Expired.Load()) }},
	// radixserve_queue_wait_seconds{_bucket,_sum,_count} are emitted as a
	// histogram family below; only the maxima remain point series.
	{"radixserve_queue_wait_seconds_max", "Worst single-row enqueue-to-dispatch queue wait (all-time).", "gauge",
		func(m *Model, c int) float64 { return float64(m.met.class(c).MaxWaitNs.Load()) / 1e9 }},
	{"radixserve_queue_wait_seconds_maxwindow", "Worst single-row enqueue-to-dispatch queue wait over the recent scrape windows (rotates on scrape).", "gauge",
		func(m *Model, c int) float64 { return float64(m.met.class(c).WinWait.Rotate()) / 1e9 }},
	{"radixserve_class_queue_depth", "Rows currently queued in the class.", "gauge",
		func(m *Model, c int) float64 { return float64(m.bat.classDepth(c)) }},
}

// writePrometheus renders every model's counters in Prometheus text
// exposition format, one labeled series per model (and per model×class for
// the QoS series), plus per-model queue gauges.
func writePrometheus(w io.Writer, models []*Model) {
	for _, pm := range promMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", pm.name, pm.help, pm.name, pm.typ)
		for _, m := range models {
			fmt.Fprintf(w, "%s{model=%q} %g\n", pm.name, m.name, pm.value(&m.met))
		}
	}
	for _, pm := range promClassMetrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", pm.name, pm.help, pm.name, pm.typ)
		for _, m := range models {
			for c := 0; c < m.qos.size(); c++ {
				fmt.Fprintf(w, "%s{model=%q,class=%q} %g\n", pm.name, m.name, m.qos.name(c), pm.value(m, c))
			}
		}
	}
	// Histogram families: per-model end-to-end latency and engine execute
	// time, per-model×class queue wait. All share obs's log2 le ladder, so
	// the router can merge backend series bucket-wise by summing counts.
	fmt.Fprintf(w, "# HELP radixserve_request_latency_seconds Enqueue-to-delivery latency of completed rows.\n# TYPE radixserve_request_latency_seconds histogram\n")
	for _, m := range models {
		m.met.LatencyHist.Snapshot().WriteTo(w, "radixserve_request_latency_seconds", fmt.Sprintf("model=%q", m.name), 1e9)
	}
	fmt.Fprintf(w, "# HELP radixserve_execute_seconds Engine invocation time per coalesced batch.\n# TYPE radixserve_execute_seconds histogram\n")
	for _, m := range models {
		m.met.ExecHist.Snapshot().WriteTo(w, "radixserve_execute_seconds", fmt.Sprintf("model=%q", m.name), 1e9)
	}
	fmt.Fprintf(w, "# HELP radixserve_queue_wait_seconds Enqueue-to-dispatch queue wait of completed rows.\n# TYPE radixserve_queue_wait_seconds histogram\n")
	for _, m := range models {
		for c := 0; c < m.qos.size(); c++ {
			m.met.class(c).WaitHist.Snapshot().WriteTo(w, "radixserve_queue_wait_seconds",
				fmt.Sprintf("model=%q,class=%q", m.name, m.qos.name(c)), 1e9)
		}
	}
	fmt.Fprintf(w, "# HELP radixserve_class_request_latency_seconds Enqueue-to-delivery latency of completed rows, per class.\n# TYPE radixserve_class_request_latency_seconds histogram\n")
	for _, m := range models {
		for c := 0; c < m.qos.size(); c++ {
			m.met.class(c).LatencyHist.Snapshot().WriteTo(w, "radixserve_class_request_latency_seconds",
				fmt.Sprintf("model=%q,class=%q", m.name, m.qos.name(c)), 1e9)
		}
	}
	fmt.Fprintf(w, "# HELP radixserve_batch_rows Rows per coalesced engine invocation.\n# TYPE radixserve_batch_rows histogram\n")
	for _, m := range models {
		// Window 0..12: le ladder 1..4096 rows, the plausible batch range.
		m.met.BatchHist.Snapshot().WriteToRange(w, "radixserve_batch_rows", fmt.Sprintf("model=%q", m.name), 1, 0, 12)
	}
	fmt.Fprintf(w, "# HELP radixserve_queue_depth Pending rows in the request queues (all classes).\n# TYPE radixserve_queue_depth gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "radixserve_queue_depth{model=%q} %d\n", m.name, m.bat.depth())
	}
	fmt.Fprintf(w, "# HELP radixserve_queue_capacity Request queue bound summed over classes (depth/capacity is a valid utilization ratio; each class's own bound is capacity/classes).\n# TYPE radixserve_queue_capacity gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "radixserve_queue_capacity{model=%q} %d\n", m.name, m.qos.size()*m.pol.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP radixserve_model_generation Engine-pool generation (1 at registration, +1 per reload).\n# TYPE radixserve_model_generation gauge\n")
	for _, m := range models {
		fmt.Fprintf(w, "radixserve_model_generation{model=%q} %d\n", m.name, m.Generation())
	}
	writeEngineMetrics(w, models)
}

// writeEngineMetrics renders the engine-level observability families:
// warm-pool utilization gauges for every model, and — for models with
// layer profiling enabled — the per-layer sampled kernel tallies with
// derived Gedges/s, the serving-stack view of the paper's per-layer
// edges/second metric.
func writeEngineMetrics(w io.Writer, models []*Model) {
	fmt.Fprintf(w, "# HELP radixserve_engine_pool_engines Warm engines in the model's current generation.\n# TYPE radixserve_engine_pool_engines gauge\n")
	for _, m := range models {
		engines, _ := m.PoolStats()
		fmt.Fprintf(w, "radixserve_engine_pool_engines{model=%q} %d\n", m.name, engines)
	}
	fmt.Fprintf(w, "# HELP radixserve_engine_pool_leased Engines currently leased out (executing or being checked out).\n# TYPE radixserve_engine_pool_leased gauge\n")
	for _, m := range models {
		_, leased := m.PoolStats()
		fmt.Fprintf(w, "radixserve_engine_pool_leased{model=%q} %d\n", m.name, leased)
	}

	type profiled struct {
		m    *Model
		snap infer.ProfileSnapshot
	}
	var profs []profiled
	for _, m := range models {
		if snap, ok := m.Profile(); ok {
			profs = append(profs, profiled{m, snap})
		}
	}
	if len(profs) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP radixserve_engine_profile_every Sampling stride of the engine-layer profiler (every Nth batch is timed).\n# TYPE radixserve_engine_profile_every gauge\n")
	for _, p := range profs {
		fmt.Fprintf(w, "radixserve_engine_profile_every{model=%q} %d\n", p.m.name, p.snap.Every)
	}
	fmt.Fprintf(w, "# HELP radixserve_engine_layer_seconds_total Sampled kernel time per layer.\n# TYPE radixserve_engine_layer_seconds_total counter\n")
	for _, p := range profs {
		for _, l := range p.snap.Layers {
			fmt.Fprintf(w, "radixserve_engine_layer_seconds_total{model=%q,layer=\"%d\"} %g\n", p.m.name, l.Layer, float64(l.Ns)/1e9)
		}
	}
	fmt.Fprintf(w, "# HELP radixserve_engine_layer_edges_total Sampled edges (rows x layer nnz) per layer.\n# TYPE radixserve_engine_layer_edges_total counter\n")
	for _, p := range profs {
		for _, l := range p.snap.Layers {
			fmt.Fprintf(w, "radixserve_engine_layer_edges_total{model=%q,layer=\"%d\"} %d\n", p.m.name, l.Layer, l.Edges)
		}
	}
	fmt.Fprintf(w, "# HELP radixserve_engine_layer_gedges_per_sec Sampled per-layer throughput in Gedges/s (edges/ns over sampled batches).\n# TYPE radixserve_engine_layer_gedges_per_sec gauge\n")
	for _, p := range profs {
		for _, l := range p.snap.Layers {
			fmt.Fprintf(w, "radixserve_engine_layer_gedges_per_sec{model=%q,layer=\"%d\"} %g\n", p.m.name, l.Layer, l.GedgesPerSec)
		}
	}
	fmt.Fprintf(w, "# HELP radixserve_engine_gedges_per_sec Whole-stack sampled throughput in Gedges/s.\n# TYPE radixserve_engine_gedges_per_sec gauge\n")
	for _, p := range profs {
		fmt.Fprintf(w, "radixserve_engine_gedges_per_sec{model=%q} %g\n", p.m.name, p.snap.GedgesPerSec)
	}
}
