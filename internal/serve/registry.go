package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/parallel"
)

// Model is one registered RadiX-Net prepared for serving: a pool of warm
// engines plus the micro-batching scheduler in front of them.
type Model struct {
	name    string
	cfg     core.Config
	inW     int
	outW    int
	layers  int
	weights int
	density float64
	pol     Policy

	engines chan *infer.Engine // the warm pool; lease = receive, release = send
	pools   []*parallel.Pool   // private per-engine worker pools, closed by Registry.Close
	bufs    sync.Pool          // staging buffers, MaxBatch×inW float64s each
	met     Metrics
	bat     *batcher
}

// ModelInfo is the externally visible description of a registered model,
// also the JSON element of GET /v1/models.
type ModelInfo struct {
	Name         string  `json:"name"`
	InputWidth   int     `json:"input_width"`
	OutputWidth  int     `json:"output_width"`
	Layers       int     `json:"layers"`
	Weights      int     `json:"weights"`
	Density      float64 `json:"density"`
	Engines      int     `json:"engines"`
	MaxBatch     int     `json:"max_batch"`
	MaxLatencyMs float64 `json:"max_latency_ms"`
	QueueDepth   int     `json:"queue_depth"`
	Workers      int     `json:"workers"`
}

// Registry loads and owns served models: it builds RadiX-Net engines by
// config, keeps a warm engine pool per model, and runs each model's
// micro-batcher. Safe for concurrent use.
type Registry struct {
	pol Policy // default policy for Register

	mu     sync.RWMutex
	models map[string]*Model
	names  []string // registration order, for stable listings
	closed bool
}

// NewRegistry returns an empty registry whose Register calls default to the
// given policy (zero fields of which default per Policy's docs).
func NewRegistry(pol Policy) *Registry {
	return &Registry{pol: pol, models: make(map[string]*Model)}
}

// Register builds the RadiX-Net of cfg with Graph Challenge weighting and
// registers it under name with a pool of `engines` warm engine instances
// (min 1), using the registry's default policy.
func (r *Registry) Register(name string, cfg core.Config, engines int) (*Model, error) {
	return r.RegisterWithPolicy(name, cfg, engines, r.pol)
}

// RegisterJSON is Register for a configuration in the graphio JSON wire
// format.
func (r *Registry) RegisterJSON(name string, cfgJSON []byte, engines int) (*Model, error) {
	cfg, err := graphio.UnmarshalConfig(cfgJSON)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	return r.Register(name, cfg, engines)
}

// RegisterWithPolicy is Register with a per-model batching policy override.
func (r *Registry) RegisterWithPolicy(name string, cfg core.Config, engines int, pol Policy) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty model name")
	}
	if engines < 1 {
		engines = 1
	}
	pol = pol.withDefaults(engines)

	// Build outside the lock: generation is the expensive part and must not
	// serialize against lookups.
	base, err := infer.FromConfig(cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	widths := cfg.LayerWidths()
	m := &Model{
		name:    name,
		cfg:     cfg,
		inW:     widths[0],
		outW:    widths[len(widths)-1],
		layers:  base.NumLayers(),
		weights: base.TotalNNZ(),
		density: core.Density(cfg),
		pol:     pol,
		engines: make(chan *infer.Engine, engines),
	}
	m.bufs.New = func() any {
		s := make([]float64, pol.MaxBatch*m.inW)
		return &s
	}
	// Clones share the weight stack; each engine gets a private worker pool
	// sized to its fair share of the machine.
	quota := parallel.Quota(engines)
	for i := 0; i < engines; i++ {
		e := base
		if i > 0 {
			e = base.Clone()
		}
		p := parallel.NewPool(quota)
		e.SetPool(p)
		m.pools = append(m.pools, p)
		m.engines <- e
	}
	m.bat = newBatcher(m, pol)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		m.teardown()
		return nil, ErrClosed
	}
	if _, dup := r.models[name]; dup {
		m.teardown()
		return nil, fmt.Errorf("serve: model %q already registered", name)
	}
	r.models[name] = m
	r.names = append(r.names, name)
	return m, nil
}

// Model returns the named model.
func (r *Registry) Model(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// List describes every registered model in registration order.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	infos := make([]ModelInfo, 0, len(r.names))
	for _, name := range r.names {
		infos = append(infos, r.models[name].Info())
	}
	return infos
}

// all returns the models in registration order (for metrics export).
func (r *Registry) all() []*Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ms := make([]*Model, 0, len(r.names))
	for _, name := range r.names {
		ms = append(ms, r.models[name])
	}
	return ms
}

// Close drains every model — new submissions fail with ErrClosed, rows
// already accepted still execute — then releases the engines' private
// worker pools. Engines leased out through Model.Lease must be Released
// before Close, and no engine may be used after it. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	ms := make([]*Model, 0, len(r.names))
	for _, name := range r.names {
		ms = append(ms, r.models[name])
	}
	r.mu.Unlock()
	for _, m := range ms {
		m.teardown()
	}
}

// teardown drains the batcher (when it exists) and closes the private
// worker pools.
func (m *Model) teardown() {
	if m.bat != nil {
		m.bat.close()
	}
	for _, p := range m.pools {
		p.Close()
	}
}

// Name returns the model's registry name.
func (m *Model) Name() string { return m.name }

// Config returns the model's RadiX-Net configuration.
func (m *Model) Config() core.Config { return m.cfg }

// InputWidth returns the width a request row must have.
func (m *Model) InputWidth() int { return m.inW }

// OutputWidth returns the width of a result row.
func (m *Model) OutputWidth() int { return m.outW }

// Metrics returns the model's live counters.
func (m *Model) Metrics() *Metrics { return &m.met }

// Info describes the model and its batching policy.
func (m *Model) Info() ModelInfo {
	return ModelInfo{
		Name:         m.name,
		InputWidth:   m.inW,
		OutputWidth:  m.outW,
		Layers:       m.layers,
		Weights:      m.weights,
		Density:      m.density,
		Engines:      cap(m.engines),
		MaxBatch:     m.pol.MaxBatch,
		MaxLatencyMs: float64(m.pol.MaxLatency) / float64(time.Millisecond),
		QueueDepth:   m.pol.QueueDepth,
		Workers:      m.pol.Workers,
	}
}

// Lease checks a warm engine out of the pool, blocking until one is free.
// The caller owns the engine exclusively until Release; the batcher leases
// one per batch, and direct callers may lease around the batcher for bulk
// offline work. Every Lease must be paired with Release before the registry
// is closed.
func (m *Model) Lease() *infer.Engine { return <-m.engines }

// Release returns a leased engine to the pool.
func (m *Model) Release(e *infer.Engine) { m.engines <- e }

// batchBuf takes a MaxBatch×InputWidth staging buffer from the model's
// buffer pool.
func (m *Model) batchBuf() []float64 { return *m.bufs.Get().(*[]float64) }

// putBatchBuf returns a staging buffer to the pool.
func (m *Model) putBatchBuf(b []float64) { m.bufs.Put(&b) }

// Infer submits one input row (length InputWidth) to the micro-batcher and
// blocks until the result lands in out (length OutputWidth) or ctx is done.
// Returns ErrQueueFull under backpressure and ErrClosed during shutdown.
// On a ctx error the row may still execute later and write out — callers
// abandoning a row must also abandon its out slice.
func (m *Model) Infer(ctx context.Context, row, out []float64) error {
	if len(row) != m.inW {
		return fmt.Errorf("serve: model %q: input width %d, want %d", m.name, len(row), m.inW)
	}
	if len(out) != m.outW {
		return fmt.Errorf("serve: model %q: output width %d, want %d", m.name, len(out), m.outW)
	}
	p := &pending{row: row, out: out, done: make(chan struct{}), enq: time.Now()}
	if err := m.bat.submit(p); err != nil {
		return err
	}
	select {
	case <-p.done:
		return p.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// InferBatch submits every row of a multi-row request to the micro-batcher
// — rows coalesce with concurrent callers' rows — and returns the outputs
// in request order. The request fails as a unit: on the first submission
// rejection the remaining rows are not submitted, already-submitted rows
// are awaited, and the rejection error is returned (so an HTTP 429 means
// the whole request should be retried).
func (m *Model) InferBatch(ctx context.Context, rows [][]float64) ([][]float64, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("serve: model %q: empty batch", m.name)
	}
	outs := make([][]float64, len(rows))
	pendings := make([]*pending, 0, len(rows))
	// Announce the whole request up front so collectors holding its first
	// rows keep waiting for the rest instead of taking the single-client
	// fast path and splitting the request into many tiny batches.
	announced := int64(len(rows))
	m.bat.incoming.Add(announced)
	defer func() { m.bat.incoming.Add(-announced) }()
	var firstErr error
	for i, row := range rows {
		if len(row) != m.inW {
			firstErr = fmt.Errorf("serve: model %q: row %d width %d, want %d", m.name, i, len(row), m.inW)
			break
		}
		outs[i] = make([]float64, m.outW)
		p := &pending{row: row, out: outs[i], done: make(chan struct{}), enq: time.Now()}
		if err := m.bat.submit(p); err != nil {
			firstErr = err
			break
		}
		pendings = append(pendings, p)
	}
	// Every row is now either in flight (counted by the batcher) or never
	// going to arrive; withdraw the announcement before awaiting results so
	// collectors don't wait on rows that will not come.
	m.bat.incoming.Add(-announced)
	announced = 0
	for _, p := range pendings {
		select {
		case <-p.done:
			if p.err != nil && firstErr == nil {
				firstErr = p.err
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}
