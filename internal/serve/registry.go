package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/parallel"
)

var (
	// ErrNotRegistered reports an Unregister or Reload of a model name the
	// registry does not hold. The HTTP layer maps it to 404.
	ErrNotRegistered = errors.New("serve: model not registered")
	// ErrAlreadyRegistered reports a Register under a name already taken.
	// The HTTP layer maps it to 409.
	ErrAlreadyRegistered = errors.New("serve: model already registered")
	// ErrIncompatible reports a Reload whose new configuration changes the
	// model's input or output width: rows already queued for the old shape
	// could not execute on the new engines, so the swap is refused. The
	// HTTP layer maps it to 422.
	ErrIncompatible = errors.New("serve: incompatible reload config")
)

// enginePool is one generation of a model's warm engines: the engines, their
// private worker pools, and the configuration they were built from. Hot
// reload swaps a model's entire generation atomically — engines of one
// generation share a weight stack and kernels, so they can never mix with
// the next generation's — and retires the old one once every outstanding
// lease has come home.
type enginePool struct {
	gen     int // 1 at registration, +1 per reload
	cfg     core.Config
	layers  int
	weights int
	density float64

	// want is the kernel the generation was requested with (preserved across
	// reloads that don't name one); kernel is what it resolved to — Auto
	// becomes radix when the config compiles to verified stride plans, CSC
	// otherwise. Immutable after construction, like the rest of the pool.
	want   infer.KernelKind
	kernel infer.KernelKind

	engines chan *infer.Engine // the warm pool; lease = receive, release = send
	all     []*infer.Engine    // every member, for lease routing bookkeeping
	workers []*parallel.Pool   // private per-engine worker pools, closed at retire

	// leases counts engines checked out plus leases in progress. retire
	// waits for it to reach zero (signaled by drained) before closing the
	// worker pools, so in-flight batches always finish on the generation
	// that started them.
	leases  atomic.Int64
	retired atomic.Bool
	drained chan struct{}
	once    sync.Once
}

// newEnginePool builds one generation: the base engine from cfg on the
// requested kernel, clones sharing its weight stack (and, on the radix
// kernel, its compiled stride plans), and a private worker pool per engine
// sized to a fair share of the machine.
func newEnginePool(cfg core.Config, engines int, kind infer.KernelKind, profileEvery int) (*enginePool, error) {
	if engines < 1 {
		engines = 1
	}
	base, err := infer.FromConfigKernel(cfg, kind)
	if err != nil {
		return nil, err
	}
	if profileEvery > 0 {
		// Attach the per-layer profiler before cloning so the whole
		// generation aggregates into one set of tallies.
		base.EnableProfiling(profileEvery)
	}
	ep := &enginePool{
		gen:     1,
		cfg:     cfg,
		layers:  base.NumLayers(),
		weights: base.TotalNNZ(),
		density: core.Density(cfg),
		want:    kind,
		kernel:  base.Kernel(),
		engines: make(chan *infer.Engine, engines),
		drained: make(chan struct{}),
	}
	quota := parallel.Quota(engines)
	for i := 0; i < engines; i++ {
		e := base
		if i > 0 {
			e = base.Clone()
		}
		p := parallel.NewPool(quota)
		e.SetPool(p)
		ep.workers = append(ep.workers, p)
		ep.all = append(ep.all, e)
		ep.engines <- e
	}
	return ep, nil
}

// unlease drops one lease and, when the generation is retired and this was
// the last one out, signals the retirer that every engine is home.
func (ep *enginePool) unlease() {
	if ep.leases.Add(-1) == 0 && ep.retired.Load() {
		ep.once.Do(func() { close(ep.drained) })
	}
}

// retire takes the generation out of service: new leases bounce to the
// model's current pool, outstanding leases drain (retire blocks until the
// last engine is released), then the worker pools close. Must be called at
// most once, by whoever swapped or removed the generation.
func (ep *enginePool) retire() {
	ep.retired.Store(true)
	if ep.leases.Load() == 0 {
		ep.once.Do(func() { close(ep.drained) })
	}
	<-ep.drained
	for _, p := range ep.workers {
		p.Close()
	}
}

// Model is one registered RadiX-Net prepared for serving: a pool of warm
// engines (swappable as a unit by Registry.Reload) plus the weighted-fair
// micro-batching scheduler in front of it.
type Model struct {
	name string
	inW  int // invariant across reloads (queued rows must stay executable)
	outW int // invariant across reloads
	pol  Policy
	qos  *qosSet // the registry's class universe, shared by every model

	pool atomic.Pointer[enginePool]
	home sync.Map // *infer.Engine → *enginePool, routes Release across generations

	bufs  sync.Pool // staging buffers, MaxBatch×inW float64s each
	met   Metrics
	bat   *batcher
	dispC dispClient // stride state for the registry's engine quota
}

// ModelInfo is the externally visible description of a registered model,
// also the JSON element of GET /v1/models.
type ModelInfo struct {
	Name        string  `json:"name"`
	Generation  int     `json:"generation"`
	InputWidth  int     `json:"input_width"`
	OutputWidth int     `json:"output_width"`
	Layers      int     `json:"layers"`
	Weights     int     `json:"weights"`
	Density     float64 `json:"density"`
	// Kernel is the kernel family the model's engines resolved to ("csc" or
	// "radix" — never "auto", which resolves at build time).
	Kernel       string  `json:"kernel"`
	Engines      int     `json:"engines"`
	MaxBatch     int     `json:"max_batch"`
	MaxLatencyMs float64 `json:"max_latency_ms"`
	QueueDepth   int     `json:"queue_depth"`
	Workers      int     `json:"workers"`
	Share        int     `json:"share,omitempty"`
}

// Registry loads and owns served models: it builds RadiX-Net engines by
// config, keeps a warm engine pool per model, and runs each model's
// weighted-fair micro-batcher. Every model shares the registry's class set
// and, when configured, its cross-model engine quota. Models can be
// registered, hot-reloaded, and unregistered at runtime. Safe for
// concurrent use.
type Registry struct {
	pol  Policy // default policy for Register
	qos  *qosSet
	disp *dispatcher // nil when the engine quota is disabled

	mu     sync.RWMutex
	models map[string]*Model
	names  []string // registration order, for stable listings
	closed bool

	// profEvery, when positive, attaches a per-layer engine profiler to
	// every generation built afterwards, sampling one in every N batches
	// (see infer.Profiler). Zero leaves profiling off.
	profEvery atomic.Int32
}

// SetProfileEvery configures engine-layer profiling for generations
// built after the call (registrations and reloads): every Nth batch is
// timed layer-by-layer. n <= 0 disables profiling for new generations.
func (r *Registry) SetProfileEvery(n int) {
	if n < 0 {
		n = 0
	}
	r.profEvery.Store(int32(n))
}

// ProfileEvery reports the registry's engine-profiling sample stride
// (0 = off).
func (r *Registry) ProfileEvery() int { return int(r.profEvery.Load()) }

// NewRegistry returns an empty registry whose Register calls default to the
// given policy (zero fields of which default per Policy's docs), with the
// default QoS configuration (DefaultClassWeights, unlabeled requests
// scheduled as interactive).
func NewRegistry(pol Policy) *Registry {
	r, err := NewRegistryQoS(pol, QoSConfig{})
	if err != nil {
		// The zero QoSConfig is valid by construction.
		panic(err)
	}
	return r
}

// NewRegistryQoS is NewRegistry with an explicit QoS configuration: the
// class set and weights the weighted-fair scheduler uses, the default class
// for unlabeled requests, and the registry-wide engine quota.
func NewRegistryQoS(pol Policy, qos QoSConfig) (*Registry, error) {
	qs, err := newQoSSet(qos)
	if err != nil {
		return nil, err
	}
	r := &Registry{pol: pol, qos: qs, models: make(map[string]*Model)}
	if qos.ExecSlots >= 0 {
		slots := qos.ExecSlots
		if slots == 0 {
			slots = runtime.GOMAXPROCS(0)
		}
		r.disp = newDispatcher(slots)
	}
	return r, nil
}

// Classes reports the registry's class set with its scheduling weights.
func (r *Registry) Classes() map[string]int {
	out := make(map[string]int, r.qos.size())
	for i, name := range r.qos.names {
		out[name] = r.qos.weights[i]
	}
	return out
}

// DefaultClass reports the class unlabeled requests are scheduled as.
func (r *Registry) DefaultClass() string { return r.qos.name(r.qos.def) }

// Register builds the RadiX-Net of cfg with Graph Challenge weighting and
// registers it under name with a pool of `engines` warm engine instances
// (min 1), using the registry's default policy and automatic kernel
// selection: the structure-aware radix kernel when the config compiles to
// verified stride plans (every standard EMR config does), generic CSC
// otherwise.
func (r *Registry) Register(name string, cfg core.Config, engines int) (*Model, error) {
	return r.RegisterWithPolicyKernel(name, cfg, engines, r.pol, infer.KernelAuto)
}

// RegisterKernel is Register with explicit kernel selection: KernelCSC pins
// the model to the generic kernels, KernelRadix demands verified stride
// plans (the registration fails if the config does not compile).
func (r *Registry) RegisterKernel(name string, cfg core.Config, engines int, kind infer.KernelKind) (*Model, error) {
	return r.RegisterWithPolicyKernel(name, cfg, engines, r.pol, kind)
}

// RegisterJSON is Register for a configuration in the graphio JSON wire
// format.
func (r *Registry) RegisterJSON(name string, cfgJSON []byte, engines int) (*Model, error) {
	cfg, err := graphio.UnmarshalConfig(cfgJSON)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	return r.Register(name, cfg, engines)
}

// RegisterWithPolicy is Register with a per-model batching policy override.
func (r *Registry) RegisterWithPolicy(name string, cfg core.Config, engines int, pol Policy) (*Model, error) {
	return r.RegisterWithPolicyKernel(name, cfg, engines, pol, infer.KernelAuto)
}

// RegisterWithPolicyKernel is Register with both a batching policy and a
// kernel override.
func (r *Registry) RegisterWithPolicyKernel(name string, cfg core.Config, engines int, pol Policy, kind infer.KernelKind) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty model name")
	}
	if engines < 1 {
		engines = 1
	}
	pol = pol.withDefaults(engines)

	// Build outside the lock: generation is the expensive part and must not
	// serialize against lookups.
	ep, err := newEnginePool(cfg, engines, kind, int(r.profEvery.Load()))
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	widths := cfg.LayerWidths()
	m := &Model{
		name:  name,
		inW:   widths[0],
		outW:  widths[len(widths)-1],
		pol:   pol,
		qos:   r.qos,
		dispC: newDispClient(pol.Share),
	}
	m.met.classes = make([]ClassMetrics, r.qos.size())
	// Exemplar capture on every latency-bearing histogram: one atomic
	// pointer swap per traced observation, and /metrics buckets resolve
	// to the trace that landed in them.
	m.met.LatencyHist.EnableExemplars()
	for i := range m.met.classes {
		m.met.classes[i].WaitHist.EnableExemplars()
		m.met.classes[i].LatencyHist.EnableExemplars()
	}
	m.bufs.New = func() any {
		s := make([]float64, pol.MaxBatch*m.inW)
		return &s
	}
	m.indexPool(ep)
	m.pool.Store(ep)
	m.bat = newBatcher(m, pol, r.qos, r.disp)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		m.teardown()
		return nil, ErrClosed
	}
	if _, dup := r.models[name]; dup {
		m.teardown()
		return nil, fmt.Errorf("%w: %q", ErrAlreadyRegistered, name)
	}
	r.models[name] = m
	r.names = append(r.names, name)
	return m, nil
}

// Unregister removes the named model from the registry and tears it down:
// new submissions fail with ErrClosed, rows already accepted finish on the
// model's engines, then the engine pool is retired. Blocks until the drain
// completes. Engines leased out through Model.Lease must be Released first.
func (r *Registry) Unregister(name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	m, ok := r.models[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	delete(r.models, name)
	for i, n := range r.names {
		if n == name {
			r.names = append(r.names[:i], r.names[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	m.teardown()
	return nil
}

// Reload hot-swaps the named model's engines for a pool built from cfg:
// the new pool is built off-lock, then installed atomically — in-flight
// batches finish on the old engines (the old generation is retired only
// after its last lease comes home), new leases get the new pool. The
// model's batcher, queue, and policy survive the swap, so concurrent
// Infer calls observe zero failures. The new configuration must keep the
// model's input and output widths (ErrIncompatible otherwise); interior
// topology, weights, and pool size may all change. engines < 1 keeps the
// current pool size, so a weights-only reload preserves the model's
// serving capacity. The model's requested kernel is preserved (use
// ReloadKernel to change it).
func (r *Registry) Reload(name string, cfg core.Config, engines int) (*Model, error) {
	return r.reload(name, cfg, engines, infer.KernelAuto, false)
}

// ReloadKernel is Reload with an explicit kernel for the new generation;
// subsequent kernel-less reloads preserve it.
func (r *Registry) ReloadKernel(name string, cfg core.Config, engines int, kind infer.KernelKind) (*Model, error) {
	return r.reload(name, cfg, engines, kind, true)
}

func (r *Registry) reload(name string, cfg core.Config, engines int, kind infer.KernelKind, setKernel bool) (*Model, error) {
	r.mu.RLock()
	m, ok := r.models[name]
	closed := r.closed
	r.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	// Validate before touching LayerWidths: a malformed config must error
	// like Register does, not panic on an empty systems slice.
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	widths := cfg.LayerWidths()
	if widths[0] != m.inW || widths[len(widths)-1] != m.outW {
		return nil, fmt.Errorf("%w: model %q serves %d→%d, new config is %d→%d",
			ErrIncompatible, name, m.inW, m.outW, widths[0], widths[len(widths)-1])
	}
	if engines < 1 {
		// Unspecified pool size means "same as now": a weights-only reload
		// must not quietly collapse an 8-engine pool to 1.
		engines = cap(m.pool.Load().engines)
	}
	if !setKernel {
		// Unspecified kernel likewise means "same as now": a weights-only
		// reload of a CSC-pinned model must not silently move it to radix.
		kind = m.pool.Load().want
	}

	// The expensive build happens with no locks held and the old pool
	// still serving traffic.
	ep, err := newEnginePool(cfg, engines, kind, int(r.profEvery.Load()))
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}

	r.mu.Lock()
	if closedNow := r.closed; closedNow || r.models[name] != m {
		// Closed or unregistered while we were building: the new pool was
		// never visible, so it can be torn down directly.
		r.mu.Unlock()
		ep.retire()
		if closedNow {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	ep.gen = m.pool.Load().gen + 1
	m.indexPool(ep)
	old := m.pool.Swap(ep)
	r.mu.Unlock()

	m.met.Reloads.Add(1)
	// Retire off-lock: this blocks until the old generation's in-flight
	// batches release their engines, which must not stall lookups or
	// further registrations.
	old.retire()
	m.dropPool(old)
	return m, nil
}

// ReloadJSON is Reload for a configuration in the graphio JSON wire format.
func (r *Registry) ReloadJSON(name string, cfgJSON []byte, engines int) (*Model, error) {
	cfg, err := graphio.UnmarshalConfig(cfgJSON)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	return r.Reload(name, cfg, engines)
}

// ReloadJSONKernel is ReloadKernel for a configuration in the graphio JSON
// wire format.
func (r *Registry) ReloadJSONKernel(name string, cfgJSON []byte, engines int, kind infer.KernelKind) (*Model, error) {
	cfg, err := graphio.UnmarshalConfig(cfgJSON)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	return r.ReloadKernel(name, cfg, engines, kind)
}

// Model returns the named model.
func (r *Registry) Model(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// List describes every registered model in registration order.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	infos := make([]ModelInfo, 0, len(r.names))
	for _, name := range r.names {
		infos = append(infos, r.models[name].Info())
	}
	return infos
}

// all returns the models in registration order (for metrics export).
func (r *Registry) all() []*Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ms := make([]*Model, 0, len(r.names))
	for _, name := range r.names {
		ms = append(ms, r.models[name])
	}
	return ms
}

// Closed reports whether Close has begun: the registry is draining for
// shutdown and refuses new work. The HTTP health endpoint uses it to flip
// /healthz to "draining" so cluster routers take the backend out of
// rotation proactively.
func (r *Registry) Closed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}

// Close drains every model — new submissions fail with ErrClosed, rows
// already accepted still execute — then releases the engines' private
// worker pools. Engines leased out through Model.Lease must be Released
// before Close, and no engine may be used after it. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	ms := make([]*Model, 0, len(r.names))
	for _, name := range r.names {
		ms = append(ms, r.models[name])
	}
	r.mu.Unlock()
	for _, m := range ms {
		m.teardown()
	}
}

// teardown drains the batcher (when it exists) and retires the current
// engine generation. Callers must ensure it runs at most once per model
// (the registry does: a model is torn down by whoever removed it).
func (m *Model) teardown() {
	if m.bat != nil {
		m.bat.close()
	}
	ep := m.pool.Load()
	ep.retire()
	m.dropPool(ep)
}

// indexPool records a generation's engines for Release routing. The home
// entries must exist before the pool becomes visible to Lease, so a lease
// taken the instant after the swap can already release.
func (m *Model) indexPool(ep *enginePool) {
	for _, e := range ep.all {
		m.home.Store(e, ep)
	}
}

// dropPool forgets a retired generation's engines.
func (m *Model) dropPool(ep *enginePool) {
	for _, e := range ep.all {
		m.home.Delete(e)
	}
}

// Name returns the model's registry name.
func (m *Model) Name() string { return m.name }

// Config returns the RadiX-Net configuration of the model's current engine
// generation.
func (m *Model) Config() core.Config { return m.pool.Load().cfg }

// Generation returns the model's engine-pool generation: 1 at registration,
// incremented by every successful Reload.
func (m *Model) Generation() int { return m.pool.Load().gen }

// Kernel reports the kernel family the model's current engine generation
// resolved to (KernelCSC or KernelRadix, never KernelAuto).
func (m *Model) Kernel() infer.KernelKind { return m.pool.Load().kernel }

// InputWidth returns the width a request row must have.
func (m *Model) InputWidth() int { return m.inW }

// OutputWidth returns the width of a result row.
func (m *Model) OutputWidth() int { return m.outW }

// Metrics returns the model's live counters.
func (m *Model) Metrics() *Metrics { return &m.met }

// Info describes the model and its batching policy.
func (m *Model) Info() ModelInfo {
	ep := m.pool.Load()
	return ModelInfo{
		Name:         m.name,
		Generation:   ep.gen,
		InputWidth:   m.inW,
		OutputWidth:  m.outW,
		Layers:       ep.layers,
		Weights:      ep.weights,
		Density:      ep.density,
		Kernel:       ep.kernel.String(),
		Engines:      cap(ep.engines),
		MaxBatch:     m.pol.MaxBatch,
		MaxLatencyMs: float64(m.pol.MaxLatency) / float64(time.Millisecond),
		QueueDepth:   m.pol.QueueDepth,
		Workers:      m.pol.Workers,
		Share:        m.pol.Share,
	}
}

// Profile snapshots the current generation's engine-layer profiler:
// per-layer kernel time and Gedges/s over the sampled batches,
// aggregated across the whole warm pool (the profiler is shared by
// every engine of the generation). ok is false when profiling is off.
func (m *Model) Profile() (infer.ProfileSnapshot, bool) {
	ep := m.pool.Load()
	if len(ep.all) == 0 {
		return infer.ProfileSnapshot{}, false
	}
	return ep.all[0].Profile()
}

// PoolStats reports the current generation's warm-pool size and how
// many engines are leased out right now (the utilization gauge pair on
// /metrics). Leased is clamped to [0, engines]: the lease counter
// transiently includes leases-in-progress.
func (m *Model) PoolStats() (engines, leased int) {
	ep := m.pool.Load()
	engines = len(ep.all)
	l := int(ep.leases.Load())
	if l < 0 {
		l = 0
	}
	if l > engines {
		l = engines
	}
	return engines, l
}

// Lease checks a warm engine out of the current generation's pool, blocking
// until one is free. The caller owns the engine exclusively until Release;
// the batcher leases one per batch, and direct callers may lease around the
// batcher for bulk offline work. Every Lease must be paired with Release
// before the model is unregistered or the registry closed. A Reload
// concurrent with Lease is safe: the lease either lands on the old
// generation (which is retired only after the matching Release) or the new
// one.
func (m *Model) Lease() *infer.Engine {
	for {
		ep := m.pool.Load()
		ep.leases.Add(1)
		if ep.retired.Load() {
			// A reload swapped generations between the Load and the lease
			// count; back out and take the current pool. The counter order
			// (count first, then check) means retire() can never miss us:
			// either it sees our lease and waits, or we see its flag.
			ep.unlease()
			continue
		}
		return <-ep.engines
	}
}

// Release returns a leased engine to the generation it came from.
func (m *Model) Release(e *infer.Engine) {
	v, ok := m.home.Load(e)
	if !ok {
		panic("serve: Release of an engine this model did not lease")
	}
	ep := v.(*enginePool)
	ep.engines <- e
	ep.unlease()
}

// batchBuf takes a MaxBatch×InputWidth staging buffer from the model's
// buffer pool. The pointer, not the slice, round-trips through the pool:
// re-boxing the header on put would cost one heap allocation per batch.
func (m *Model) batchBuf() *[]float64 { return m.bufs.Get().(*[]float64) }

// putBatchBuf returns a staging buffer to the pool.
func (m *Model) putBatchBuf(b *[]float64) { m.bufs.Put(b) }

// ResolveClass canonicalizes a request class name ("" → the registry's
// default class), or fails with ErrUnknownClass. The HTTP layer uses it to
// validate and attribute a request's class before any row is queued.
func (m *Model) ResolveClass(name string) (string, error) {
	id, err := m.qos.id(name)
	if err != nil {
		return "", err
	}
	return m.qos.name(id), nil
}

// retryAfterMinSamples is how many queue waits a class must have observed
// before its histogram p90 is trusted as the Retry-After basis; below it
// the depth/drain-rate fallback answers.
const retryAfterMinSamples = 32

// RetryAfterSeconds estimates how long a backpressured client of the given
// class ("" → default class) should wait before retrying, clamped to
// [1s, 30s]. The HTTP layer emits it as the Retry-After header on 429 so
// the cluster router's backoff path engages with a real number instead of
// a constant.
//
// The primary basis is the class's MEASURED queue-wait distribution: a 429
// means the class queue is full, so a newly admitted row would wait about
// as long as recently dispatched rows did — the p90 of the exported
// queue-wait histogram. A distribution quantile absorbs batching and DRR
// interleave effects a depth/drain-rate point estimate has to model, and it
// is exactly the number an operator sees on /metrics, so the hint is
// auditable. Until the class has observed retryAfterMinSamples waits the
// histogram is noise, and the cold fallback answers instead: queue depth
// over the class's DRR share of the engine's measured drain capacity
// (rows per second of engine-busy time — a property of the model, stable
// across idle periods, so a long-idle model never tells its first burst to
// park for the 30s cap while the queue actually drains in milliseconds).
func (m *Model) RetryAfterSeconds(class string) int {
	id, err := m.qos.id(class)
	if err != nil {
		id = m.qos.def // unknown classes never reach the queue; be safe anyway
	}
	if wh := m.met.class(id).WaitHist.Snapshot(); wh.Count >= retryAfterMinSamples {
		secs := int(math.Ceil(float64(wh.Quantile(0.90)) / 1e9))
		if secs < 1 {
			secs = 1
		}
		if secs > 30 {
			secs = 30
		}
		return secs
	}
	depth, share := m.bat.classBacklog(id)
	rate := 1.0 // rows/s floor: a model that never executed answers something sane
	if rows, busyNs := m.met.BatchedRows.Load(), m.met.ExecNs.Load(); rows > 0 && busyNs > 0 {
		if r := float64(rows) / (float64(busyNs) / 1e9) * share; r > rate {
			rate = r
		}
	}
	secs := int(math.Ceil(float64(depth) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// Do submits one QoS-aware request — multi-row payload, priority class,
// optional deadline — to the weighted-fair micro-batcher and blocks until
// every row completes or ctx is done. Rows coalesce with concurrent
// requests' rows into shared engine batches; the scheduler dispatches
// across classes by deficit round-robin, so a flood in one class cannot
// starve another. The request fails as a unit: on the first submission
// rejection the remaining rows are not submitted, already-submitted rows
// are awaited, and the first error is returned (ErrQueueFull under
// backpressure, ErrDeadlineExceeded when rows expired queued, ErrClosed
// during shutdown, ErrUnknownClass for a class the registry does not
// serve). On a ctx error rows may still execute later and write their out
// slices — callers abandoning a request must also abandon its outputs.
func (m *Model) Do(ctx context.Context, req *Request) (*Response, error) {
	if req == nil || len(req.Rows) == 0 {
		return nil, fmt.Errorf("serve: model %q: empty batch", m.name)
	}
	class, err := m.qos.id(req.Class)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", m.name, err)
	}
	if !req.Deadline.IsZero() && !time.Now().Before(req.Deadline) {
		// Already dead on arrival: shed without touching the queues, with
		// the books identical to a dequeue-time shed — Accepted AND Expired,
		// exactly as if the rows had queued and expired instantly, so the
		// accepted = completed + failed + expired + queued identity that
		// dashboards derive in-flight counts from keeps holding.
		n := int64(len(req.Rows))
		m.met.Accepted.Add(n)
		m.met.Expired.Add(n)
		cm := m.met.class(class)
		cm.Accepted.Add(n)
		cm.Expired.Add(n)
		return nil, fmt.Errorf("serve: model %q: %w", m.name, ErrDeadlineExceeded)
	}
	outs := req.outs
	if outs == nil {
		outs = make([][]float64, len(req.Rows))
	}
	pendings := make([]*pending, 0, len(req.Rows))
	// Announce multi-row requests up front so collectors holding their
	// first rows keep waiting for the rest instead of taking the
	// single-client fast path and splitting the request into tiny batches.
	// Single rows are not announced: the announcement window would defeat
	// the fast path for closed-loop clients.
	var announced int64
	if len(req.Rows) > 1 {
		announced = int64(len(req.Rows))
		m.bat.incoming.Add(announced)
	}
	withdraw := func() {
		if announced != 0 {
			m.bat.incoming.Add(-announced)
			announced = 0
		}
	}
	defer withdraw()
	var firstErr error
	for i, row := range req.Rows {
		if len(row) != m.inW {
			firstErr = fmt.Errorf("serve: model %q: row %d width %d, want %d", m.name, i, len(row), m.inW)
			break
		}
		if outs[i] == nil {
			outs[i] = make([]float64, m.outW)
		}
		p := &pending{
			row:      row,
			out:      outs[i],
			done:     make(chan struct{}),
			enq:      time.Now(),
			class:    class,
			deadline: req.Deadline,
			trace:    req.TraceID,
		}
		if err := m.bat.submit(p); err != nil {
			firstErr = err
			break
		}
		pendings = append(pendings, p)
	}
	// Every row is now either in flight (counted by the batcher) or never
	// going to arrive; withdraw the announcement before awaiting results so
	// collectors don't wait on rows that will not come.
	withdraw()
	resp := &Response{Outputs: outs, Class: m.qos.name(class), TraceID: req.TraceID}
	if resp.TraceID == "" {
		resp.TraceID = obs.NewTraceID()
	}
	var queueD, assembleD, leaseD, deliverD time.Duration
	for _, p := range pendings {
		select {
		case <-p.done:
			if p.err != nil && firstErr == nil {
				firstErr = p.err
			}
			if p.wait > resp.QueueWait {
				resp.QueueWait = p.wait
			}
			if p.exec > resp.Execute {
				resp.Execute = p.exec
			}
			if !p.deq.IsZero() {
				if d := p.deq.Sub(p.enq); d > queueD {
					queueD = d
				}
			}
			if p.assemble > assembleD {
				assembleD = p.assemble
			}
			if p.lease > leaseD {
				leaseD = p.lease
			}
			if p.deliver > deliverD {
				deliverD = p.deliver
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	resp.Spans = pipelineSpans(queueD, assembleD, leaseD, resp.Execute, deliverD)
	return resp, nil
}

// Infer submits one input row (length InputWidth) to the micro-batcher and
// blocks until the result lands in out (length OutputWidth) or ctx is done.
// Returns ErrQueueFull under backpressure and ErrClosed during shutdown.
// On a ctx error the row may still execute later and write out — callers
// abandoning a row must also abandon its out slice.
//
// Compatibility wrapper over Do: the row is scheduled as the registry's
// default class with no deadline, so pre-QoS callers behave bit-identically
// to the pre-QoS scheduler.
func (m *Model) Infer(ctx context.Context, row, out []float64) error {
	if len(row) != m.inW {
		return fmt.Errorf("serve: model %q: input width %d, want %d", m.name, len(row), m.inW)
	}
	if len(out) != m.outW {
		return fmt.Errorf("serve: model %q: output width %d, want %d", m.name, len(out), m.outW)
	}
	_, err := m.Do(ctx, &Request{Rows: [][]float64{row}, outs: [][]float64{out}})
	return err
}

// InferBatch submits every row of a multi-row request to the micro-batcher
// — rows coalesce with concurrent callers' rows — and returns the outputs
// in request order. The request fails as a unit: on the first submission
// rejection the remaining rows are not submitted, already-submitted rows
// are awaited, and the rejection error is returned (so an HTTP 429 means
// the whole request should be retried).
//
// Compatibility wrapper over Do: rows are scheduled as the registry's
// default class with no deadline.
func (m *Model) InferBatch(ctx context.Context, rows [][]float64) ([][]float64, error) {
	resp, err := m.Do(ctx, &Request{Rows: rows})
	if err != nil {
		return nil, err
	}
	return resp.Outputs, nil
}
