package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/sparse"
)

// benchConfig is the serving benchmark network: radix [8,8,8] → width 512,
// 3 layers — big enough that batching matters, small enough for CI smoke.
func benchConfig(b *testing.B) core.Config {
	b.Helper()
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(8, 8, 8)}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkServe_Microbatch measures end-to-end rows/s through the
// registry + micro-batcher (no HTTP) at several client concurrency levels.
// This is the scheduler's headline number: single-row requests from
// concurrent clients coalescing into dense engine batches.
func BenchmarkServe_Microbatch(b *testing.B) {
	cfg := benchConfig(b)
	reg := NewRegistry(Policy{MaxBatch: 64, MaxLatency: 500 * time.Microsecond, QueueDepth: 4096})
	defer reg.Close()
	m, err := reg.Register("bench", cfg, 4)
	if err != nil {
		b.Fatal(err)
	}
	const inputRows = 64
	in, err := dataset.SparseBatch(inputRows, m.InputWidth(), m.InputWidth()/10, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, conc := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < conc; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					out := make([]float64, m.OutputWidth())
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						if err := m.Infer(context.Background(), in.RowSlice(int(i%inputRows)), out); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
	s := m.Metrics().Snapshot()
	b.Logf("mean batch %.1f over %d batches", s.MeanBatch, s.Batches)
}

// BenchmarkServe_UnbatchedBaseline is the number the micro-batcher is
// judged against: one engine, one row per Infer, serial — what a naive
// per-request serving loop would do.
func BenchmarkServe_UnbatchedBaseline(b *testing.B) {
	cfg := benchConfig(b)
	eng, err := infer.FromConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	widths := cfg.LayerWidths()
	in, err := dataset.SparseBatch(64, widths[0], widths[0]/10, 1)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]*sparse.Dense, in.Rows())
	for r := range rows {
		var err error
		rows[r], err = sparse.DenseFromSlice(1, in.Cols(), in.RowSlice(r))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Infer(rows[i%len(rows)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
