// Package serve turns the fused RadiX-Net inference kernel stack into a
// production inference service: a model registry owning pools of warm
// infer.Engine instances, a dynamic micro-batching scheduler that coalesces
// concurrent single-row requests into dense batches, and an HTTP JSON API
// with health and metrics endpoints. It is the system layer the ROADMAP
// north star asks for — the Graph Challenge setting of Kepner et al.
// (arXiv:1905.00416) assumes many models × many inputs, and serving is what
// carries single-engine kernel speed to that scale.
//
// # Architecture
//
// Registry — models are registered by name from a core.Config (or its
// graphio JSON wire form). Registration builds the RadiX-Net once and
// clones the resulting engine into a pool of warm instances: clones share
// the immutable weight stack (matrices + precomputed CSC kernels) but own
// their ping-pong scratch, so the pool costs N activation buffers, not N
// model copies. Engines are leased per batch over a buffered channel;
// infer.ErrBusy backs the contract that no two batches ever share an
// engine. Each engine gets a private parallel.Pool sized
// parallel.Quota(poolSize): with many engines each runs its layer loops
// serially and parallelism comes from concurrent batches, avoiding core
// oversubscription.
//
// Control plane — the registry is live: Unregister drains a model and
// removes it, and Reload hot-swaps a model's entire engine pool for one
// built from a new config of the same input/output shape. Because a pool's
// engines share one weight stack, generations swap as a unit: the new pool
// is built off-lock, installed with one atomic pointer swap, and the old
// generation is retired only after lease counting shows its last
// checked-out engine home — so in-flight batches finish on the weights
// they started with and concurrent Infer callers never see a failure.
// HTTP surfaces these as POST /v1/models (409 on duplicates), PUT
// /v1/models/{name} (404 unknown, 422 shape change), and DELETE
// /v1/models/{name} (404 unknown).
//
// QoS scheduler — the request path is QoS-aware end to end. Callers submit
// a Request carrying a priority class (default set: interactive/batch/
// background with weights 8/2/1, configurable via QoSConfig), an optional
// deadline, and a multi-row payload; Model.Do returns a Response with
// queue-wait and execute timings. Each model keeps one bounded FIFO per
// class (capacity Policy.QueueDepth each) drained by Policy.Workers
// collector goroutines running deficit round-robin: every visit to a
// backlogged class credits it weight rows, so dispatch converges to weight
// proportions under contention and any backlogged class with nonzero
// weight makes progress within a bounded number of dispatches — a
// saturating background flood cannot starve interactive traffic. Rows
// whose deadline has passed are shed at dequeue (ErrDeadlineExceeded,
// HTTP 504), never executed. Model.Infer and Model.InferBatch remain as
// thin compatibility wrappers scheduling the registry's default class.
//
// Micro-batching — a collector takes a weighted-fair batch and — if still
// short of Policy.MaxBatch — waits up to Policy.MaxLatency for more rows
// before leasing an engine and running one fused forward pass over the
// coalesced batch (classes share batches; priority decides dequeue order,
// not batch membership). Single-row latency is therefore bounded by
// MaxLatency plus one batch execution, while throughput under load
// approaches the engine's dense-batch rate. A batch already holding every
// in-flight row waits only a short grace window rather than the full
// budget (the single-client fast path: a closed-loop client pays
// microseconds, not the batching budget; multi-row requests announce their
// rows up front so they still coalesce whole). Because every batch goes
// through the same Engine.Infer gather/scatter kernels, batched results
// are bit-identical to per-row inference. When QoSConfig.ExecSlots bounds
// the registry's engine quota, models contending for slots are granted
// them share-weighted (Policy.Share) by a stride scheduler.
//
// Backpressure — each class queue is a hard bound. A submission that finds
// its class full fails immediately with ErrQueueFull (surfaced as HTTP 429
// with the class attributed and a Retry-After derived from queue depth and
// drain rate) instead of queuing unboundedly; shutdown fails new
// submissions with ErrClosed (HTTP 503) while draining rows already
// accepted.
//
// HTTP API — POST /v1/infer runs rows through the batcher (body fields
// "class" and "deadline_ms", or the X-Radix-Class/X-Radix-Deadline-Ms
// headers a cluster router forwards); GET /v1/models lists registered
// models; GET /healthz reports liveness; GET /metrics exposes
// request/batch/latency counters plus per-class queue-wait series in
// Prometheus text format. The Server wraps net/http with graceful
// shutdown: stop accepting, drain in-flight handlers, then drain the
// batchers.
//
// Observability — the request path is instrumented with internal/obs
// primitives chosen so measurement never contends with serving: latency
// (end-to-end per model, queue wait per model×class, execute per model)
// is recorded in lock-free log-bucketed histograms (one atomic add per
// observation, 0 allocs) exported as Prometheus histogram families whose
// shared bucket ladder a router can merge bucket-wise; max-style gauges
// are windowed (reset on scrape); 429 Retry-After is derived from the
// live queue-wait p90 once enough samples exist. Every request carries a
// 32-hex trace ID (X-Radix-Trace-Id honored, else generated) returned in
// the response header and body together with per-stage spans (admission,
// queue, assemble, lease, execute, deliver); recent and slowest traces
// are retained in a bounded lock-free ring served by GET /debug/traces,
// and ServerOptions.SlowRequest logs outliers with their span breakdown.
// ServerOptions.Pprof mounts net/http/pprof; /metrics always includes Go
// runtime gauges.
package serve
