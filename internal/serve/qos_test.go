package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// schedHarness builds a classSched over the default class universe.
func schedHarness(t *testing.T, depth int) (*qosSet, *classSched) {
	t.Helper()
	qos, err := newQoSSet(QoSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return qos, newClassSched(qos, depth)
}

func mkPending(class int) *pending {
	return &pending{class: class, done: make(chan struct{}), enq: time.Now()}
}

// TestFairSchedulerWeightedShares backs the WFQ claim: with every class
// continuously backlogged, dispatched rows converge to weight proportions.
func TestFairSchedulerWeightedShares(t *testing.T) {
	qos, s := schedHarness(t, 4096)
	now := time.Now()
	served := make([]int, qos.size())
	// Keep every queue topped up and take batches until enough dispatches
	// accumulate to judge proportions.
	const rounds = 200
	for r := 0; r < rounds; r++ {
		for c := 0; c < qos.size(); c++ {
			for s.depth(c) < 64 {
				if err := s.enqueue(mkPending(c)); err != nil {
					t.Fatal(err)
				}
			}
		}
		got, shed := s.take(nil, 32, now)
		if len(shed) != 0 {
			t.Fatalf("shed %d rows without deadlines", len(shed))
		}
		for _, p := range got {
			served[p.class]++
		}
	}
	total := 0
	totalWeight := 0
	for c := 0; c < qos.size(); c++ {
		total += served[c]
		totalWeight += qos.weights[c]
	}
	for c := 0; c < qos.size(); c++ {
		want := float64(qos.weights[c]) / float64(totalWeight)
		got := float64(served[c]) / float64(total)
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("class %q served %.3f of rows, want %.3f ± 10%% (weights %v, served %v)",
				qos.name(c), got, want, qos.weights, served)
		}
	}
}

// TestFairSchedulerNoStarvationAdversarial is the property-style starvation
// test: under adversarial arrival patterns (the heavy class refilled to a
// full backlog before every single take), any class with pending work and
// nonzero weight makes progress within a bounded number of dispatches.
func TestFairSchedulerNoStarvationAdversarial(t *testing.T) {
	qos, s := schedHarness(t, 4096)
	now := time.Now()
	interactive, err := qos.id(ClassInteractive)
	if err != nil {
		t.Fatal(err)
	}
	totalWeight := 0
	for _, w := range qos.weights {
		totalWeight += w
	}
	rng := rand.New(rand.NewSource(7)) //nolint:gosec // deterministic test pattern
	for victim := 0; victim < qos.size(); victim++ {
		if victim == interactive {
			continue // interactive is the flooder below
		}
		// One row of the victim class arrives behind an adversarial flood.
		target := mkPending(victim)
		if err := s.enqueue(target); err != nil {
			t.Fatal(err)
		}
		const maxBatch = 8
		// Bound: one full round-robin cycle dispatches ≤ totalWeight rows
		// of other classes before the victim's turn; with takes of maxBatch
		// rows each, the victim must surface within cycle/maxBatch (+1 for
		// a mid-quantum resume, +1 slack) takes.
		bound := totalWeight/maxBatch + 2
		served := false
		for i := 0; i < bound && !served; i++ {
			// Adversary: refill the flood to a deep backlog before every
			// take, in random bursts.
			for s.depth(interactive) < 512 {
				burst := 1 + rng.Intn(64)
				for b := 0; b < burst && s.depth(interactive) < 1024; b++ {
					if err := s.enqueue(mkPending(interactive)); err != nil {
						t.Fatal(err)
					}
				}
			}
			got, _ := s.take(nil, maxBatch, now)
			for _, p := range got {
				if p == target {
					served = true
				}
			}
		}
		if !served {
			t.Fatalf("class %q starved: its row not dispatched within %d takes under an interactive flood",
				qos.name(victim), bound)
		}
	}
}

// TestFairSchedulerDeadlineShed: rows whose deadline passed are returned as
// shed at dequeue, never dispatched, and cost their class no deficit.
func TestFairSchedulerDeadlineShed(t *testing.T) {
	qos, s := schedHarness(t, 16)
	interactive, _ := qos.id(ClassInteractive)
	now := time.Now()
	expired := mkPending(interactive)
	expired.deadline = now.Add(-time.Millisecond)
	live := mkPending(interactive)
	live.deadline = now.Add(time.Hour)
	plain := mkPending(interactive)
	for _, p := range []*pending{expired, live, plain} {
		if err := s.enqueue(p); err != nil {
			t.Fatal(err)
		}
	}
	got, shed := s.take(nil, 8, now)
	if len(shed) != 1 || shed[0] != expired {
		t.Fatalf("shed = %v, want exactly the expired row", shed)
	}
	if len(got) != 2 {
		t.Fatalf("dispatched %d rows, want 2", len(got))
	}
	if s.pending != 0 {
		t.Fatalf("pending = %d after full drain", s.pending)
	}
}

// TestQoSPerClassQueueIsolation: one class's queue at capacity must not
// reject another class's rows — queue space is per class by design.
func TestQoSPerClassQueueIsolation(t *testing.T) {
	qos, s := schedHarness(t, 4)
	interactive, _ := qos.id(ClassInteractive)
	background, _ := qos.id(ClassBackground)
	for i := 0; i < 4; i++ {
		if err := s.enqueue(mkPending(background)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.enqueue(mkPending(background)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("5th background row: %v, want ErrQueueFull", err)
	}
	if err := s.enqueue(mkPending(interactive)); err != nil {
		t.Fatalf("interactive row rejected while only background is full: %v", err)
	}
}

// TestQoSDispatcherStrideShares: contended execution slots are granted in
// share proportion. With the slot held and 4+4 waiters queued from a
// share-4 and a share-1 model, the share-4 model's grants all land before
// the share-1 model's 2nd grant.
func TestQoSDispatcherStrideShares(t *testing.T) {
	d := newDispatcher(1)
	hold := newDispClient(1)
	d.acquire(&hold) // pin the only slot so waiters pile up

	big := newDispClient(4)
	small := newDispClient(1)
	type grant struct{ who string }
	grants := make(chan grant, 8)
	var wg sync.WaitGroup
	queued := 0
	enqueue := func(who string, c *dispClient, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.acquire(c)
				grants <- grant{who}
				d.release()
			}()
			// Serialize enqueues so every waiter is in the heap (with its
			// pass assigned in order) before the first grant.
			queued++
			waitFor(t, "waiter queued", func() bool {
				d.mu.Lock()
				defer d.mu.Unlock()
				return d.waiters.Len() == queued
			})
		}
	}
	enqueue("big", &big, 4)
	enqueue("small", &small, 4)
	d.release() // let the chain run: each grant releases for the next
	wg.Wait()
	close(grants)
	var order []string
	for g := range grants {
		order = append(order, g.who)
	}
	if len(order) != 8 {
		t.Fatalf("got %d grants, want 8", len(order))
	}
	// Stride math: big's passes are {0,s,2s,3s} (s = scale/4), small's
	// {0,4s,8s,12s}. Sorted, positions 3..5 are big's remaining grants and
	// 6..8 small's: all four big grants land in the first five, and small
	// never gets its second grant before big finishes.
	bigIn5 := 0
	for _, who := range order[:5] {
		if who == "big" {
			bigIn5++
		}
	}
	if bigIn5 != 4 {
		t.Fatalf("share-4 model got %d of the first 5 grants, want 4 (order %v)", bigIn5, order)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQoSDoClassAndTimings: Do schedules by class, echoes the canonical
// class, reports timings, and rejects unknown classes.
func TestQoSDoClassAndTimings(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: time.Millisecond})
	defer reg.Close()
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, m.InputWidth())
	row[2] = 1

	resp, err := m.Do(context.Background(), &Request{Rows: [][]float64{row}, Class: ClassBatch})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Class != ClassBatch {
		t.Fatalf("Class = %q, want %q", resp.Class, ClassBatch)
	}
	if len(resp.Outputs) != 1 || len(resp.Outputs[0]) != m.OutputWidth() {
		t.Fatalf("outputs shape wrong: %d rows", len(resp.Outputs))
	}
	if resp.Execute <= 0 {
		t.Fatalf("Execute = %v, want > 0", resp.Execute)
	}
	if resp.QueueWait < 0 {
		t.Fatalf("QueueWait = %v", resp.QueueWait)
	}

	// Default class for unlabeled requests.
	resp, err = m.Do(context.Background(), &Request{Rows: [][]float64{row}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Class != ClassInteractive {
		t.Fatalf("default class = %q, want %q", resp.Class, ClassInteractive)
	}

	// Unknown class fails before queuing anything.
	if _, err := m.Do(context.Background(), &Request{Rows: [][]float64{row}, Class: "vip"}); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("unknown class: %v, want ErrUnknownClass", err)
	}
	if got := m.Metrics().Accepted.Load(); got != 2 {
		t.Fatalf("accepted = %d, want 2 (unknown class must not queue)", got)
	}

	// Per-class counters saw one batch row and one interactive row.
	snaps := m.ClassSnapshots()
	byName := make(map[string]ClassSnapshot, len(snaps))
	for _, s := range snaps {
		byName[s.Class] = s
	}
	if byName[ClassBatch].Completed != 1 || byName[ClassInteractive].Completed != 1 {
		t.Fatalf("class completions: %+v", byName)
	}
}

// TestQoSDoDeadlineShedsQueuedRows: with the engine starved, queued rows
// whose deadline passes are shed with ErrDeadlineExceeded and never
// executed.
func TestQoSDoDeadlineShedsQueuedRows(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 4, MaxLatency: time.Millisecond, QueueDepth: 8, Workers: 1})
	defer reg.Close()
	m, err := reg.Register("m", cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, m.InputWidth())

	// Dead on arrival: shed without queueing, booked as accepted+expired so
	// the counter identity (accepted = completed+failed+expired+queued)
	// holds.
	_, err = m.Do(context.Background(), &Request{
		Rows: [][]float64{row}, Deadline: time.Now().Add(-time.Second),
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired request: %v, want ErrDeadlineExceeded", err)
	}
	if s := m.Metrics().Snapshot(); s.Expired != 1 || s.Accepted != 1 {
		t.Fatalf("after DOA shed: expired %d accepted %d, want 1/1", s.Expired, s.Accepted)
	}

	// Queued past its deadline: starve the worker (lease the only engine,
	// and occupy the worker with a batch that blocks on the lease), then
	// submit a short-deadline row behind it and release.
	eng := m.Lease()
	blocker := make(chan error, 1)
	go func() {
		out := make([]float64, m.OutputWidth())
		blocker <- m.Infer(context.Background(), row, out)
	}()
	// Wait until the worker has actually DEQUEUED the blocker (it is now
	// blocked on the engine lease) — only then is the next submission
	// guaranteed to sit in the queue rather than join the blocker's batch.
	waitFor(t, "worker holds the blocker", func() bool {
		return m.bat.inflight.Load() == 1 && m.bat.depth() == 0
	})
	// Outwait the collector's company-grace window (200µs) so the next
	// submission cannot join the blocker's still-collecting batch.
	time.Sleep(5 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := m.Do(context.Background(), &Request{
			Rows: [][]float64{row}, Deadline: time.Now().Add(20 * time.Millisecond),
		})
		done <- err
	}()
	waitFor(t, "row queued", func() bool { return m.bat.depth() == 1 })
	time.Sleep(40 * time.Millisecond) // let the deadline die while queued
	m.Release(eng)
	if err := <-blocker; err != nil {
		t.Fatalf("blocker row failed: %v", err)
	}
	if err := <-done; !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued-expired request: %v, want ErrDeadlineExceeded", err)
	}
	if got := m.Metrics().Expired.Load(); got != 2 {
		t.Fatalf("Expired = %d, want 2", got)
	}
}

// TestQoSHTTPClassDeadlineWire covers the wire plumbing: class echoes and
// timing fields on 200, 422 on an unknown class, 504 with class
// attribution on an expired deadline, and header precedence over the body.
func TestQoSHTTPClassDeadlineWire(t *testing.T) {
	_, m, ts := newTestServer(t, Policy{MaxBatch: 8, MaxLatency: time.Millisecond}, 1)
	row := make([]float64, m.InputWidth())
	row[1] = 1

	resp, body := postInfer(t, ts.URL, InferRequest{Model: "m", Inputs: [][]float64{row}, Class: ClassBackground})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ok InferResponse
	if err := json.Unmarshal(body, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.Class != ClassBackground {
		t.Fatalf("response class %q, want background", ok.Class)
	}
	if ok.ExecuteMs <= 0 {
		t.Fatalf("execute_ms = %v, want > 0", ok.ExecuteMs)
	}

	// Unknown class → 422 with attribution, before any row queues.
	before := m.Metrics().Accepted.Load()
	resp, body = postInfer(t, ts.URL, InferRequest{Model: "m", Inputs: [][]float64{row}, Class: "vip"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown class: status %d: %s", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Model != "m" || e.Class != "vip" {
		t.Fatalf("422 body %s: want model and class attribution (err %v)", body, err)
	}
	if m.Metrics().Accepted.Load() != before {
		t.Fatal("unknown-class request queued rows")
	}

	// Expired deadline → 504 with class attribution.
	resp, body = postInfer(t, ts.URL, InferRequest{Model: "m", Inputs: [][]float64{row}, DeadlineMs: 0.000001})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Class != ClassInteractive {
		t.Fatalf("504 body %s: want default-class attribution (err %v)", body, err)
	}

	// Router headers beat the body: the body says batch, the header (the
	// canonical class a router forwards) says background.
	reqBody, err := json.Marshal(InferRequest{Model: "m", Inputs: [][]float64{row}, Class: ClassBatch})
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(HeaderClass, ClassBackground)
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if err := json.NewDecoder(hresp.Body).Decode(&ok); err != nil {
		t.Fatal(err)
	}
	if ok.Class != ClassBackground {
		t.Fatalf("header class ignored: scheduled as %q", ok.Class)
	}

	// Header deadline (already expired) beats the body's absent one.
	hreq2, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	hreq2.Header.Set("Content-Type", "application/json")
	hreq2.Header.Set(HeaderDeadlineMs, "0.000001")
	hresp2, err := http.DefaultClient.Do(hreq2)
	if err != nil {
		t.Fatal(err)
	}
	hresp2.Body.Close()
	if hresp2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("header deadline: status %d, want 504", hresp2.StatusCode)
	}
}

// TestQoSHTTP429ClassAttributionAndRetryAfter: a saturated class queue
// answers 429 naming the class, with a positive integer Retry-After
// derived from queue depth and drain rate.
func TestQoSHTTP429ClassAttributionAndRetryAfter(t *testing.T) {
	pol := Policy{MaxBatch: 2, MaxLatency: 2 * time.Millisecond, QueueDepth: 2, Workers: 1}
	_, m, ts := newTestServer(t, pol, 1)
	row := make([]float64, m.InputWidth())
	row[0] = 1
	eng := m.Lease() // starve the worker

	var got429 atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postInfer(t, ts.URL, InferRequest{Model: "m", Inputs: [][]float64{row}, Class: ClassBackground})
			if resp.StatusCode != http.StatusTooManyRequests {
				return
			}
			got429.Add(1)
			ra := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Errorf("Retry-After %q, want a positive integer", ra)
			}
			var e ErrorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Model != "m" || e.Class != ClassBackground {
				t.Errorf("429 body %s: want model+class attribution (err %v)", body, err)
			}
		}()
	}
	waitFor(t, "rejections", func() bool { return m.Metrics().Rejected.Load() >= 8 })
	m.Release(eng)
	wg.Wait()
	if got429.Load() == 0 {
		t.Fatal("no 429s under class saturation")
	}
	// The rejections were attributed to the background class only.
	snaps := m.ClassSnapshots()
	for _, s := range snaps {
		if s.Class == ClassBackground && s.Rejected == 0 {
			t.Error("background rejections not counted per class")
		}
		if s.Class != ClassBackground && s.Rejected != 0 {
			t.Errorf("class %q charged %d rejections for a background flood", s.Class, s.Rejected)
		}
	}
}

// TestQoSDoConcurrentReloadUnregisterRace is the race-mode test for the new
// request path: concurrent Do calls across classes while the model is
// hot-reloaded and finally unregistered. No request may fail for any
// reason other than the terminal ErrClosed.
func TestQoSDoConcurrentReloadUnregisterRace(t *testing.T) {
	cfg := testConfig(t)
	reg := NewRegistry(Policy{MaxBatch: 8, MaxLatency: time.Millisecond})
	defer reg.Close()
	m, err := reg.Register("m", cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	classes := []string{ClassInteractive, ClassBatch, ClassBackground, ""}
	row := make([]float64, m.InputWidth())
	row[3] = 1

	stop := make(chan struct{})
	var unexpected atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := &Request{Rows: [][]float64{row}, Class: classes[(w+i)%len(classes)]}
				if (w+i)%5 == 0 {
					req.Deadline = time.Now().Add(time.Second)
				}
				if _, err := m.Do(context.Background(), req); err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
					unexpected.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 3; i++ {
		if _, err := reg.Reload("m", cfg, 2); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	if err := reg.Unregister("m"); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d unexpected errors during reload/unregister (first: %v)", n, firstErr.Load())
	}
}

// TestQoSRegistryConfigValidation: bad QoS configs are refused, good ones
// resolve classes as documented.
func TestQoSRegistryConfigValidation(t *testing.T) {
	if _, err := NewRegistryQoS(Policy{}, QoSConfig{Weights: map[string]int{"a": 0}}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewRegistryQoS(Policy{}, QoSConfig{Weights: map[string]int{"": 3}}); err == nil {
		t.Error("empty class name accepted")
	}
	if _, err := NewRegistryQoS(Policy{}, QoSConfig{DefaultClass: "nope"}); err == nil {
		t.Error("default class outside the set accepted")
	}
	reg, err := NewRegistryQoS(Policy{}, QoSConfig{Weights: map[string]int{"gold": 4, "bronze": 1}, ExecSlots: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	// No "interactive" in a custom set: the heaviest class is the default.
	if got := reg.DefaultClass(); got != "gold" {
		t.Fatalf("default class %q, want gold", got)
	}
	if w := reg.Classes(); w["gold"] != 4 || w["bronze"] != 1 {
		t.Fatalf("classes = %v", w)
	}
	m, err := reg.Register("m", testConfig(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ResolveClass("interactive"); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("interactive resolved in a custom set: %v", err)
	}
	if name, err := m.ResolveClass(""); err != nil || name != "gold" {
		t.Fatalf("ResolveClass(\"\") = %q, %v", name, err)
	}
}

