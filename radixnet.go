// Package radixnet is the public API of a from-scratch Go implementation of
// RadiX-Nets — the deterministically sparse, symmetric, path-connected deep
// neural network topologies of Robinett & Kepner, "RadiX-Net: Structured
// Sparse Matrices for Deep Neural Networks" (2019, arXiv:1905.00416).
//
// A RadiX-Net is defined by an ordered set N* of mixed-radix numeral
// systems plus a dense "shape" D, and is built in two steps: the mixed-radix
// topologies of the systems are concatenated, then each adjacency submatrix
// is Kronecker-lifted by the all-ones blocks of D. The result provably has
// the same number of paths between every input/output pair (symmetry),
// hence every output depends on every input (path-connectedness), at
// density ≈ µ^{−(d−1)} for mean radix µ and per-system depth d.
//
// Quick start:
//
//	sys := radixnet.MustSystem(2, 2, 2)          // N = (2,2,2), N′ = 8
//	cfg, _ := radixnet.NewConfig([]radixnet.System{sys}, nil)
//	net, _ := radixnet.Build(cfg)                // the Fig. 1 topology
//	m, ok := net.Symmetric()                     // ok, m = 1
//
// The facade re-exports the layered internals:
//
//   - mixed-radix numeral systems (internal/radix)
//   - sparse matrix algebra (internal/sparse)
//   - FNNT topology algebra with exact big-integer path counting
//     (internal/topology)
//   - the RadiX-Net generator, density theory and presets (internal/core)
//   - X-Net / dense / random-prune baselines (internal/xnet)
//   - a training substrate with sparse layers (internal/nn)
//   - a Graph Challenge–style sparse inference engine (internal/infer)
//   - a production inference service: model registry with a live control
//     plane (register/unregister/atomic hot-reload), warm engine pools,
//     dynamic micro-batching, HTTP API (internal/serve)
//   - a multi-node sharding layer: consistent-hash model placement,
//     health-probed backends, failover routing, fleet-wide model
//     administration (internal/cluster)
//   - serialization (internal/graphio)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of every figure and claim in the paper.
package radixnet

import (
	"io"
	"math/big"

	"github.com/radix-net/radixnet/internal/autoscale"
	"github.com/radix-net/radixnet/internal/cluster"
	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/graphio"
	"github.com/radix-net/radixnet/internal/infer"
	"github.com/radix-net/radixnet/internal/obs"
	"github.com/radix-net/radixnet/internal/obs/slo"
	"github.com/radix-net/radixnet/internal/radix"
	"github.com/radix-net/radixnet/internal/serve"
	"github.com/radix-net/radixnet/internal/sparse"
	"github.com/radix-net/radixnet/internal/topology"
)

// System is a mixed-radix numeral system N = (N1, …, NL), Ni ≥ 2.
type System = radix.System

// Config is a full RadiX-Net parameterization: systems N* plus dense shape D.
type Config = core.Config

// Topology is a feedforward neural network topology (FNNT): a layered graph
// represented by its adjacency submatrices.
type Topology = topology.FNNT

// Pattern is a binary CSR sparsity pattern, the representation of one
// adjacency submatrix.
type Pattern = sparse.Pattern

// PathMatrix is an exact big-integer matrix of input→output path counts.
type PathMatrix = sparse.BigDense

// BrainStats summarizes a brain-scale preset against biological targets.
type BrainStats = core.BrainStats

// DensityCell is one (µ, d) cell of the Fig. 7 density surface.
type DensityCell = core.DensityCell

// NewSystem validates radices (each ≥ 2) and returns the numeral system.
func NewSystem(radices ...int) (System, error) { return radix.New(radices...) }

// MustSystem is NewSystem but panics on invalid input; for literals.
func MustSystem(radices ...int) System { return radix.MustNew(radices...) }

// ParseSystem parses "(3,3,4)" or "3,3,4".
func ParseSystem(text string) (System, error) { return radix.Parse(text) }

// UniformSystem returns (base, …, base) with depth digits.
func UniformSystem(base, depth int) (System, error) { return radix.Uniform(base, depth) }

// FactorizeSystem returns a system whose radices multiply to n, from n's
// prime factorization.
func FactorizeSystem(n int) (System, error) { return radix.Factorize(n) }

// NewConfig assembles and validates a RadiX-Net configuration. A nil shape
// selects the all-ones dense shape (a pure extended mixed-radix topology).
func NewConfig(systems []System, shape []int) (Config, error) {
	return core.NewConfig(systems, shape)
}

// Build generates the RadiX-Net topology of cfg by the paper's Fig. 6
// algorithm.
func Build(cfg Config) (*Topology, error) { return core.Build(cfg) }

// MixedRadix returns the mixed-radix topology induced by one numeral system
// (Fig. 1 of the paper).
func MixedRadix(sys System) *Topology { return core.MixedRadix(sys) }

// EMR returns the extended mixed-radix topology: the concatenation of the
// systems' mixed-radix topologies (Lemma 2 of the paper).
func EMR(systems ...System) (*Topology, error) { return core.EMR(systems...) }

// Density returns the exact density of the configured topology in closed
// form (eq. 4 of the paper) without building it.
func Density(cfg Config) float64 { return core.Density(cfg) }

// DensityApproxMu returns the eq. (5) approximation ΔG ≈ µ/N′.
func DensityApproxMu(mu float64, nprime int) float64 { return core.DensityApproxMu(mu, nprime) }

// DensityApproxMuD returns the eq. (6) approximation ΔG ≈ µ^{−(d−1)}.
func DensityApproxMuD(mu, d float64) float64 { return core.DensityApproxMuD(mu, d) }

// DensityMap evaluates the Fig. 7 density surface on a (µ, d) grid.
func DensityMap(muMin, muMax, dMin, dMax int) []DensityCell {
	return core.DensityMap(muMin, muMax, dMin, dMax)
}

// TheoreticalPaths returns the exact input→output path count of the
// configured topology (generalized Theorem 1; see DESIGN.md erratum E-b).
func TheoreticalPaths(cfg Config) *big.Int { return cfg.TheoreticalPaths() }

// GraphChallengeConfig returns a configuration emulating the Graph
// Challenge synthetic sparse DNNs at the given width and layer count.
func GraphChallengeConfig(width, layers int) (Config, error) {
	return core.GraphChallengeConfig(width, layers)
}

// UniformConfig returns the zero-variance family: numSystems copies of the
// uniform (base, …, base) system with a constant interior lift.
func UniformConfig(base, depth, numSystems, lift int) (Config, error) {
	return core.UniformConfig(base, depth, numSystems, lift)
}

// BrainConfig builds a configuration whose size and sparsity approximate
// the human brain at the given scale (experiment E11).
func BrainConfig(scale float64, layerCount int) (BrainStats, error) {
	return core.BrainConfig(scale, layerCount)
}

// StreamEdges enumerates every edge of the configured topology without
// materializing it, calling fn(layer, u, v) until it returns false.
func StreamEdges(cfg Config, fn func(layer int, u, v int64) bool) error {
	return core.StreamEdges(cfg, fn)
}

// Dense is a row-major dense float64 matrix: the activation-batch type the
// inference engine consumes and produces (rows = samples).
type Dense = sparse.Dense

// NewDense returns a zeroed rows×cols dense batch.
func NewDense(rows, cols int) (*Dense, error) { return sparse.NewDense(rows, cols) }

// DenseFromSlice wraps a row-major slice of length rows*cols without
// copying.
func DenseFromSlice(rows, cols int, data []float64) (*Dense, error) {
	return sparse.DenseFromSlice(rows, cols, data)
}

// SparseBatch returns n input rows of the given width with nnzPerRow
// seeded-random nonzero activations each — Graph Challenge–style sparse
// inference inputs.
func SparseBatch(n, width, nnzPerRow int, seed int64) (*Dense, error) {
	return dataset.SparseBatch(n, width, nnzPerRow, seed)
}

// InferEngine is the Graph Challenge–style batched sparse inference engine:
// a fused, allocation-free kernel stack applying Y ← min(cap, ReLU(Y·Wl+bl))
// across the layer stack (experiment E10). See internal/infer for the
// kernel design (CSC gather, ping-pong buffers, fused epilogue, active-row
// tracking).
type InferEngine = infer.Engine

// InferFromConfig generates the RadiX-Net of cfg and wraps it in an
// inference engine with Graph Challenge weighting.
func InferFromConfig(cfg Config) (*InferEngine, error) { return infer.FromConfig(cfg) }

// InferKernel selects which fused kernel family an engine's layer steps
// run: the generic CSC gather/CSR scatter pair, or the structure-aware
// radix butterfly kernel that replaces index arrays with compiled
// mixed-radix stride plans. The two are bit-identical; radix is faster on
// radix-structured layers.
type InferKernel = infer.KernelKind

const (
	// KernelCSC pins the generic fused CSC/CSR kernels — correct for any
	// sparsity pattern, and the bit-identity oracle for the radix path.
	KernelCSC = infer.KernelCSC
	// KernelRadix demands the structure-aware butterfly kernel; engine
	// construction fails if the config does not compile to verified
	// stride plans.
	KernelRadix = infer.KernelRadix
	// KernelAuto resolves to KernelRadix when the stride plans verify and
	// KernelCSC otherwise — the default for config-built engines.
	KernelAuto = infer.KernelAuto
)

// ParseInferKernel parses a kernel name ("csc", "radix", "auto"; empty
// means auto) as accepted by configs and command-line flags.
func ParseInferKernel(s string) (InferKernel, error) { return infer.ParseKernel(s) }

// InferFromConfigKernel is InferFromConfig with explicit kernel selection.
func InferFromConfigKernel(cfg Config, kind InferKernel) (*InferEngine, error) {
	return infer.FromConfigKernel(cfg, kind)
}

// InferFromTopology assigns every edge of the topology the given weight and
// every layer the given bias, with activations capped at cap (≤ 0 disables
// the ceiling).
func InferFromTopology(g *Topology, weight, bias, cap float64) (*InferEngine, error) {
	return infer.FromTopology(g, weight, bias, cap)
}

// ErrEngineBusy is returned by InferEngine.Infer when a call overlaps
// another on the same engine; engines are single-flight (use one per
// worker — the serving layer's engine pools are built on this contract).
var ErrEngineBusy = infer.ErrBusy

// Registry loads and owns served models: it builds engines by
// configuration, keeps a pool of warm engine instances per model, and runs
// each model's micro-batching scheduler. The registry is live — models can
// be registered, atomically hot-reloaded (Reload swaps the whole engine
// pool as a unit once in-flight batches drain), and unregistered at
// runtime.
type Registry = serve.Registry

// Server exposes a Registry over HTTP: POST /v1/infer with dynamic
// micro-batching and explicit backpressure (429), GET /v1/models, GET
// /healthz, GET /metrics, and the model control plane (POST /v1/models,
// PUT and DELETE /v1/models/{name}), with graceful shutdown. See README.md
// "Serving" and "Model administration" for the API and semantics.
type Server = serve.Server

// ServedModel is one registered model: a warm engine pool behind a
// micro-batching scheduler.
type ServedModel = serve.Model

// ServePolicy bounds a model's micro-batching scheduler: batch size cap,
// latency budget, queue depth (the backpressure threshold), and worker
// count. Zero fields select defaults.
type ServePolicy = serve.Policy

// ServedModelInfo describes a registered model and its batching policy.
type ServedModelInfo = serve.ModelInfo

// ErrQueueFull is the serving backpressure signal: the model's bounded
// request queue is at capacity. Mapped to HTTP 429 by Server.
var ErrQueueFull = serve.ErrQueueFull

// ErrServeClosed reports a submission to an unregistered model or a closed
// (draining) registry. Mapped to HTTP 503 by Server.
var ErrServeClosed = serve.ErrClosed

// ErrModelNotRegistered reports an Unregister or Reload of an unknown
// model name. Mapped to HTTP 404 by Server.
var ErrModelNotRegistered = serve.ErrNotRegistered

// ErrModelExists reports a Register under a taken name. Mapped to HTTP 409
// by Server.
var ErrModelExists = serve.ErrAlreadyRegistered

// ErrReloadIncompatible reports a Reload whose new configuration would
// change the model's input or output width. Mapped to HTTP 422 by Server.
var ErrReloadIncompatible = serve.ErrIncompatible

// ServeRequest is the QoS-aware inference request: a multi-row payload
// plus a priority class and an optional deadline. Submit with
// ServedModel.Do; ServedModel.Infer/InferBatch remain as compatibility
// wrappers scheduling the registry's default class.
type ServeRequest = serve.Request

// ServeResponse reports a completed ServeRequest with its canonical class
// and queue-wait/execute timings.
type ServeResponse = serve.Response

// ServeQoSConfig sets a registry's quality-of-service policy: the class
// set with weighted-fair-queuing weights, the default class for unlabeled
// requests, and the cross-model engine quota.
type ServeQoSConfig = serve.QoSConfig

// ErrUnknownClass reports a request naming a class the registry was not
// configured with. Mapped to HTTP 422 by Server.
var ErrUnknownClass = serve.ErrUnknownClass

// ErrDeadlineExceeded reports a request whose deadline passed before its
// rows reached an engine (they are shed at dequeue, never executed).
// Mapped to HTTP 504 by Server.
var ErrDeadlineExceeded = serve.ErrDeadlineExceeded

// NewRegistry returns an empty model registry whose registrations default
// to the given batching policy, with the default QoS configuration
// (interactive/batch/background weighted 8/2/1).
func NewRegistry(pol ServePolicy) *Registry { return serve.NewRegistry(pol) }

// NewRegistryQoS is NewRegistry with an explicit QoS configuration.
func NewRegistryQoS(pol ServePolicy, qos ServeQoSConfig) (*Registry, error) {
	return serve.NewRegistryQoS(pol, qos)
}

// NewServer wraps the registry in an HTTP inference server bound to addr.
func NewServer(reg *Registry, addr string) *Server { return serve.NewServer(reg, addr) }

// ServerOptions tunes a Server's observability surface: opt-in pprof
// endpoints, the slow-request log threshold, the /debug/traces ring
// depth, and the SLO burn-rate engine (SLOConfig). The zero value
// matches NewServer.
type ServerOptions = serve.ServerOptions

// NewServerOpts is NewServer with explicit observability options.
func NewServerOpts(reg *Registry, addr string, opts ServerOptions) *Server {
	return serve.NewServerOpts(reg, addr, opts)
}

// Histogram is a lock-free log-bucketed latency histogram: Observe is
// atomic and allocation-free, snapshots merge bucket-wise across
// instances, and quantiles carry at most 2× resolution error. It backs
// every *_seconds histogram family on the serve and router /metrics.
type Histogram = obs.Histogram

// HistogramSnapshot is a point-in-time copy of a Histogram, with
// Quantile, Merge, and Prometheus text exposition.
type HistogramSnapshot = obs.HistSnapshot

// Trace is one request's record: identity, attribution, and the
// per-stage span breakdown served by GET /debug/traces.
type Trace = obs.Trace

// TraceSpan is one named stage of a request trace (offset + duration).
type TraceSpan = obs.Span

// TraceRing retains the most recent and slowest request traces in a
// bounded lock-free ring.
type TraceRing = obs.TraceRing

// HeaderTraceID is the HTTP header carrying a request's trace ID
// end-to-end through the router to the backend and back.
const HeaderTraceID = obs.HeaderTraceID

// NewTraceID returns a fresh 32-hex-character trace ID.
func NewTraceID() string { return obs.NewTraceID() }

// TraceExemplar is a histogram bucket's exemplar: the most recent trace
// that landed in the bucket, annotated on /metrics in OpenMetrics style
// so a latency spike on a panel resolves to a full span breakdown via
// GET /debug/traces?trace=<id>.
type TraceExemplar = obs.Exemplar

// HeaderSpans is the HTTP response header carrying a backend's span
// breakdown in compact wire form. The router decodes it, rebases the
// offsets by the attempt's start, and grafts the spans into its own
// trace — stitched distributed tracing with no cross-machine clock
// agreement required.
const HeaderSpans = obs.HeaderSpans

// EncodeSpans renders a span breakdown in the HeaderSpans wire form
// (empty for no spans; capped at 64 records).
func EncodeSpans(spans []TraceSpan) string { return obs.EncodeSpans(spans) }

// DecodeSpans parses a HeaderSpans value, rejecting malformed or
// hostile input: bad field counts, non-finite or negative timings,
// oversize payloads.
func DecodeSpans(s string) ([]TraceSpan, error) { return obs.DecodeSpans(s) }

// RebaseSpans returns a copy of spans with every start shifted by
// baseMs — placing backend-local span offsets on the caller's own
// request timeline.
func RebaseSpans(spans []TraceSpan, baseMs float64) []TraceSpan {
	return obs.RebaseSpans(spans, baseMs)
}

// EngineProfile is a point-in-time engine profiling snapshot: total and
// per-layer batch timings and Gedges/s throughput, sampled every Nth
// batch (Registry.SetProfileEvery; ServedModel.Profile reads it) and
// exported as the radixserve_engine_* metric families.
type EngineProfile = infer.ProfileSnapshot

// EngineLayerProfile is one layer's slice of an EngineProfile.
type EngineLayerProfile = infer.LayerProfile

// SLOObjective is one service-level objective: a latency bound (or the
// error-rate kind) with a target success ratio, scoped to a model
// and/or QoS class ("*" or empty are wildcards).
type SLOObjective = slo.Objective

// SLOConfig arms the multi-window SLO burn-rate engine on a Server (via
// ServerOptions.SLO) or Router (RouterConfig.SLO, evaluated against the
// fleet-merged histograms): the objectives plus the fast/slow burn
// windows (defaults 5 m / 1 h).
type SLOConfig = slo.Config

// SLOStatus is one objective's evaluation: fast/slow burn rates, the
// remaining error budget, and the resulting state ("ok", "warn", or
// "violated" — violated only when BOTH windows burn hot, so a brief
// spike alone never pages).
type SLOStatus = slo.Status

// SLOView is the GET /v1/slo response body: the window configuration
// and every objective's SLOStatus.
type SLOView = slo.View

// ParseSLOObjectives parses -slo style MODEL:CLASS:LATENCY:TARGET_PCT
// specs, e.g. "*:interactive:250ms:99" or "e10::error:99.9".
func ParseSLOObjectives(specs []string) ([]SLOObjective, error) {
	return slo.ParseObjectives(specs)
}

// Ring is a consistent-hash ring with virtual nodes: the model-placement
// function of a radixserve fleet. Adding or removing a backend moves only
// ~1/N of the keyspace.
type Ring = cluster.Ring

// NewRing returns an empty ring placing each node at vnodes virtual
// positions (≤ 0 selects the default of 128).
func NewRing(vnodes int) *Ring { return cluster.NewRing(vnodes) }

// Router is the sharding front end over a radixserve fleet: it exposes the
// single-node HTTP API, forwards each inference request to the owning
// healthy backend (placed by a Ring), fails over across replicas, probes
// backend health, merges /v1/models and /metrics across the fleet, and
// fans the model control plane out fleet-wide (register to the ring's
// intended replicas; reload/unregister to every backend reporting the
// model). See cmd/radixrouter and README.md "Clustering".
type Router = cluster.Router

// RouterConfig assembles a Router: listen address, backend addresses,
// replication factor, backoff cap, health-probing knobs, and the
// fleet-scoped SLO burn-rate engine (SLOConfig).
type RouterConfig = cluster.RouterConfig

// ClusterSetConfig tunes a Router's backend set: probe cadence and
// timeout, the consecutive-failure ejection threshold, and ring virtual
// nodes. Zero fields select defaults.
type ClusterSetConfig = cluster.SetConfig

// NewRouter validates the configuration, builds the fleet's ring and
// health-probed backend set, and wires the routing front end.
func NewRouter(cfg RouterConfig) (*Router, error) { return cluster.NewRouter(cfg) }

// AutoscalePolicy bounds the router's replica control loop: evaluation
// interval, replica floor/ceiling, per-decision step, cooldown, the
// queue-wait-p90 hysteresis band, the 429-rate trigger, and the QoS class
// shed when an SLO stays violated at the replica ceiling. Set on
// RouterConfig.Autoscale (nil disables the loop); the zero value
// validates to the documented defaults.
type AutoscalePolicy = autoscale.Policy

// AutoscaleModelStats is one model's load observation per evaluation
// interval: fleet-merged queue-wait p90, 429 rate, throughput, replica
// count, and SLO burn state.
type AutoscaleModelStats = autoscale.ModelStats

// AutoscaleDecision is one bounded actuation the controller emits: a
// replica move, a shed installation, or a shed clearance, with the
// triggering reason.
type AutoscaleDecision = autoscale.Decision

// AutoscaleController is the pure decision half of the control loop —
// hysteresis, cooldown, bounded steps, down-streaks — with no clocks or
// cluster state, so its convergence behavior is unit-testable.
type AutoscaleController = autoscale.Controller

// NewAutoscaleController validates the policy (filling defaults) and
// returns a controller; the router drives one per autoscaled fleet.
func NewAutoscaleController(pol AutoscalePolicy) (*AutoscaleController, error) {
	return autoscale.New(pol)
}

// SearchSpec describes a desired topology: width, density, depth.
type SearchSpec = core.SearchSpec

// Candidate is one configuration proposed by Search.
type Candidate = core.Candidate

// Search enumerates mixed-radix factorizations of the requested width and
// returns configurations whose exact density lands within tolerance of the
// target, ranked by density error then radix variance.
func Search(spec SearchSpec) ([]Candidate, error) { return core.Search(spec) }

// OrderedFactorizations enumerates every ordered factorization of n into
// factors ≥ 2, capped at maxLen factors.
func OrderedFactorizations(n, maxLen int) [][]int {
	return core.OrderedFactorizations(n, maxLen)
}

// Isomorphic reports whether two topologies are isomorphic as layered
// graphs (related by per-layer node relabelings), returning witnessing
// permutations. maxNodes bounds the search (0 = unbounded).
func Isomorphic(g, h *Topology, maxNodes int) ([][]int, bool) {
	return topology.IsomorphicByLayerPermutation(g, h, maxNodes)
}

// WriteTSV writes the topology as `layer src dst` lines.
func WriteTSV(w io.Writer, g *Topology) error { return graphio.WriteTSV(w, g) }

// ReadTSV parses the WriteTSV format.
func ReadTSV(r io.Reader) (*Topology, error) { return graphio.ReadTSV(r) }

// WriteDOT renders the topology as a Graphviz digraph.
func WriteDOT(w io.Writer, g *Topology, name string) error { return graphio.WriteDOT(w, g, name) }

// MarshalConfig encodes a configuration as JSON.
func MarshalConfig(cfg Config) ([]byte, error) { return graphio.MarshalConfig(cfg) }

// UnmarshalConfig decodes and validates a configuration from JSON.
func UnmarshalConfig(data []byte) (Config, error) { return graphio.UnmarshalConfig(data) }
