module github.com/radix-net/radixnet

go 1.24
