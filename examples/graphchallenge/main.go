// Graph Challenge: RadiX-Net's flagship downstream application. The
// MIT/IEEE/Amazon Sparse DNN Graph Challenge distributes synthetic deep
// networks generated with the authors' RadiX-Net code; this example
// regenerates a challenge-style network from its (N*, D) parameters, runs
// batched threshold-ReLU inference over sparse inputs, and reports the
// challenge's throughput metric (edges traversed per second).
//
// Run with:
//
//	go run ./examples/graphchallenge
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/infer"
)

func main() {
	log.SetFlags(0)

	const (
		width  = 1024 // neurons per layer (challenge sizes: 1024·4^k)
		layers = 60   // weight layers (challenge: 120/480/1920; trimmed here)
		batch  = 32   // input rows
		nnz    = 120  // nonzeros per input row (MNIST-like sparsity)
	)

	cfg, err := core.GraphChallengeConfig(width, layers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("challenge network: %d layers × %d neurons\n", layers, width)
	fmt.Printf("edges: %s  density: %.4g  (32 connections/neuron)\n",
		cfg.NumEdges(), core.Density(cfg))

	start := time.Now()
	engine, err := infer.FromConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated in %v\n", time.Since(start).Round(time.Millisecond))

	in, err := dataset.SparseBatch(batch, width, nnz, 1)
	if err != nil {
		log.Fatal(err)
	}

	start = time.Now()
	out, err := engine.Infer(in)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	edges := float64(batch) * float64(engine.TotalNNZ())
	fmt.Printf("inference: %v for %d rows × %d layers\n", elapsed.Round(time.Millisecond), batch, layers)
	fmt.Printf("throughput: %.3g edges/s\n", edges/elapsed.Seconds())

	// Count surviving activations, the challenge's category check.
	alive := 0
	for r := 0; r < out.Rows(); r++ {
		for _, v := range out.RowSlice(r) {
			if v > 0 {
				alive++
				break
			}
		}
	}
	fmt.Printf("rows with surviving activations: %d/%d\n", alive, batch)
}
