// SLO observability: serve a model with burn-rate objectives armed, then
// walk the full observability chain the server exposes — an inference
// request's trace ID, the exemplar-annotated latency buckets on /metrics,
// the exemplar→trace jump via /debug/traces?trace=, and the multi-window
// SLO evaluation on /v1/slo.
//
// Two objectives are registered: a deliberately unmeetable 1µs latency
// bound (every request burns its error budget, so it reads "violated")
// and a loose 10s bound (reads "ok"). Real deployments set these with
// the -slo flag on radixserve or radixrouter; the router variant
// evaluates objectives against the fleet-merged histograms.
//
// Run with:
//
//	go run ./examples/slo_observability
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	radixnet "github.com/radix-net/radixnet"
)

func main() {
	log.SetFlags(0)

	// A small RadiX-Net served under the default QoS policy.
	sys := radixnet.MustSystem(4, 4)
	cfg, err := radixnet.NewConfig([]radixnet.System{sys}, nil)
	if err != nil {
		log.Fatal(err)
	}
	reg := radixnet.NewRegistry(radixnet.ServePolicy{MaxBatch: 8, MaxLatency: time.Millisecond})
	reg.SetProfileEvery(1) // profile every engine batch (flag: -profile-every)
	model, err := reg.Register("demo", cfg, 1)
	if err != nil {
		log.Fatal(err)
	}

	// -slo "demo::1us:99" -slo "demo::10s:50", as flags would spell it.
	objectives, err := radixnet.ParseSLOObjectives([]string{"demo::1us:99", "demo::10s:50"})
	if err != nil {
		log.Fatal(err)
	}
	srv := radixnet.NewServerOpts(reg, "127.0.0.1:0", radixnet.ServerOptions{
		SLO: radixnet.SLOConfig{Objectives: objectives},
	})
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	base := "http://" + addr

	// Drive a few requests; each response carries its trace ID and the
	// span breakdown header the router would stitch from.
	var traceID string
	row := make([]float64, model.InputWidth())
	row[0] = 1
	for i := 0; i < 4; i++ {
		body, _ := json.Marshal(map[string]any{"model": "demo", "inputs": [][]float64{row}})
		resp, err := http.Post(base+"/v1/infer", "application/json", strings.NewReader(string(body)))
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		traceID = resp.Header.Get(radixnet.HeaderTraceID)
		if spans, err := radixnet.DecodeSpans(resp.Header.Get(radixnet.HeaderSpans)); err == nil && i == 0 {
			fmt.Printf("request traced as %s, %d spans in %s:\n", traceID, len(spans), radixnet.HeaderSpans)
			for _, s := range spans {
				fmt.Printf("  %-10s +%.3fms  %.3fms\n", s.Name, s.StartMs, s.DurMs)
			}
		}
	}

	// The latency buckets on /metrics carry exemplars — the most recent
	// trace that landed in each bucket.
	fmt.Println("\nexemplar-annotated latency buckets:")
	for _, line := range strings.Split(get(base+"/metrics"), "\n") {
		if strings.HasPrefix(line, `radixserve_request_latency_seconds_bucket{model="demo"`) &&
			strings.Contains(line, "trace_id") {
			fmt.Println(" ", line)
		}
	}

	// Any bucket's trace_id resolves to the full span breakdown.
	var lookup struct {
		Trace *radixnet.Trace `json:"trace"`
	}
	if err := json.Unmarshal([]byte(get(base+"/debug/traces?trace="+traceID)), &lookup); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n?trace=%s → %d spans, total %.3fms\n", traceID, len(lookup.Trace.Spans), lookup.Trace.TotalMs)

	// The burn-rate engine: the 1µs objective is violated (every request
	// exceeds it in both windows), the 10s objective is ok.
	var view radixnet.SLOView
	if err := json.Unmarshal([]byte(get(base+"/v1/slo")), &view); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSLO view (fast %s / slow %s):\n", view.FastWindow, view.SlowWindow)
	for _, st := range view.Statuses {
		fmt.Printf("  %-16s state=%-9s fast burn %6.1f×  slow burn %6.1f×  budget %5.1f%%\n",
			st.Objective.Name, st.State, st.FastBurn, st.SlowBurn, 100*st.BudgetRemaining)
	}

	// Engine-level profiling, sampled per batch: Gedges/s by layer.
	if prof, ok := model.Profile(); ok {
		fmt.Printf("\nengine profile: %.3f Gedges/s over %d batches\n", prof.GedgesPerSec, prof.Batches)
		for _, l := range prof.Layers {
			fmt.Printf("  layer %d: nnz %-5d %.3f Gedges/s\n", l.Layer, l.NNZ, l.GedgesPerSec)
		}
	}
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(data)
}
