// Topology search: the downstream-adopter workflow. You know the shape of
// the sparse block you want — width, density, depth — and let the library
// find RadiX-Net parameters realizing it, then verify the guarantees and
// inspect information flow through the result.
//
// Run with:
//
//	go run ./examples/topology_search
package main

import (
	"fmt"
	"log"

	radixnet "github.com/radix-net/radixnet"
)

func main() {
	log.SetFlags(0)

	// "I want a 256-wide, ~1/16-dense, 6-layer sparse block."
	spec := radixnet.SearchSpec{
		Width:      256,
		Density:    1.0 / 16,
		EdgeLayers: 6,
		Tolerance:  0.30,
		MaxResults: 5,
	}
	cands, err := radixnet.Search(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidates for width=%d density=%.4g layers=%d:\n", spec.Width, spec.Density, spec.EdgeLayers)
	for i, c := range cands {
		fmt.Printf("  %d. %-40s density=%.5g err=%.1f%% µ=%.3g\n",
			i+1, c.Config.String(), c.Density, c.DensityErr*100, c.MeanRadix)
	}
	if len(cands) == 0 {
		log.Fatal("no candidates — widen the tolerance")
	}

	best := cands[0]
	net, err := radixnet.Build(best.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuilt: %v\n", net)

	// The guarantees, verified exactly.
	m, ok := net.Symmetric()
	fmt.Printf("symmetric: %v (m = %v paths per input/output pair)\n", ok, m)
	fmt.Printf("path-connected: %v\n", net.PathConnected())

	// Information flow: how fast does one input's receptive field cover the
	// network, and where is the narrowest point?
	profile, err := net.ReachabilityProfile(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receptive field of input 0 by layer: %v\n", profile)
	bottleneck, err := net.Bottleneck()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case coverage by layer:        %v\n", bottleneck)

	// Structural identity: relabeling nodes does not change the topology's
	// class — the library can prove two builds isomorphic.
	twin, err := radixnet.Build(best.Config)
	if err != nil {
		log.Fatal(err)
	}
	if _, iso := radixnet.Isomorphic(net, twin, 0); !iso {
		log.Fatal("identical builds must be isomorphic")
	}
	fmt.Println("isomorphism check: identical builds are isomorphic ✓")
}
