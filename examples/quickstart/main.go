// Quickstart: build the paper's Figure 1 topology — the mixed-radix
// topology of N = (2,2,2) — inspect its structure, and verify the
// properties the paper proves about it: symmetry (equal path counts) and
// path-connectedness.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	radixnet "github.com/radix-net/radixnet"
)

func main() {
	log.SetFlags(0)

	// N = (2,2,2): a three-digit binary mixed-radix system. N′ = 8 nodes per
	// layer, four layers, and each layer i adds edges j → j + n·2^{i-1}.
	sys := radixnet.MustSystem(2, 2, 2)
	cfg, err := radixnet.NewConfig([]radixnet.System{sys}, nil)
	if err != nil {
		log.Fatal(err)
	}
	net, err := radixnet.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1 of the paper:", net)
	for i := 0; i < net.NumSubs(); i++ {
		fmt.Printf("\nW%d (shift offsets {0, %d}):\n%s", i+1, 1<<i, net.Sub(i))
	}

	// Symmetry: the same number of paths between EVERY input/output pair.
	// For a single mixed-radix topology that number is exactly 1 (Lemma 1):
	// the digits (n1, n2, n3) of v−u are the unique route.
	m, ok := net.Symmetric()
	fmt.Printf("\nsymmetric: %v with m = %v path(s) per pair (Lemma 1 says 1)\n", ok, m)
	fmt.Printf("path-connected: %v\n", net.PathConnected())
	fmt.Printf("density: %.4g (= µ/N′ = 2/8)\n", net.Density())

	// The closed-form theory agrees without building anything.
	fmt.Printf("eq. (4) closed-form density: %.4g\n", radixnet.Density(cfg))
	fmt.Printf("Theorem 1 path count:        %v\n", radixnet.TheoreticalPaths(cfg))

	// Export the topology for external tools.
	fmt.Println("\nTSV edge list (layer  src  dst):")
	if err := radixnet.WriteTSV(os.Stdout, net); err != nil {
		log.Fatal(err)
	}
}
