// Sparse training: the paper's motivating use case. Build a RadiX-Net
// topology, attach trainable weights to its edges, and train it on a
// synthetic digit-classification task next to a dense network of the same
// layer sizes — reproducing the shape of the Alford & Kepner result the
// paper cites: comparable accuracy at a fraction of the parameters.
//
// Run with:
//
//	go run ./examples/sparse_training
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/radix-net/radixnet/internal/core"
	"github.com/radix-net/radixnet/internal/dataset"
	"github.com/radix-net/radixnet/internal/nn"
	"github.com/radix-net/radixnet/internal/radix"
)

func main() {
	log.SetFlags(0)

	// Synthetic stand-in for MNIST: procedural 16×16 digit glyphs.
	data, err := dataset.Digits(1500, 0.10, 42)
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := data.Split(0.8, 1)
	if err != nil {
		log.Fatal(err)
	}
	targets, err := train.Targets()
	if err != nil {
		log.Fatal(err)
	}

	// Hidden block: RadiX-Net with N′ = 256 from systems (16,16) — two
	// sparse 256→256 layers with 16 connections per neuron (density 1/16).
	cfg, err := core.NewConfig([]radix.System{radix.MustNew(16, 16)}, nil)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := core.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden topology: %v\n", topo)

	rng := rand.New(rand.NewSource(7))

	// Sparse contestant: dense input adapter → RadiX-Net block → dense head.
	firstS, err := nn.NewDenseLinear(dataset.DigitFeatures, 256, rng)
	if err != nil {
		log.Fatal(err)
	}
	lastS, err := nn.NewDenseLinear(256, 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	sparseNet, err := nn.NewNetwork(
		firstS, nn.ReLU(),
		nn.NewSparseLinear(topo.Sub(0), rng), nn.ReLU(),
		nn.NewSparseLinear(topo.Sub(1), rng), nn.ReLU(),
		lastS,
	)
	if err != nil {
		log.Fatal(err)
	}

	// Dense contestant at identical layer sizes.
	denseNet, err := nn.DenseNet([]int{dataset.DigitFeatures, 256, 256, 256, 10}, nn.ReLU, rng)
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []struct {
		name string
		net  *nn.Network
	}{{"radix-net", sparseNet}, {"dense", denseNet}} {
		tr := &nn.Trainer{
			Net:       c.net,
			Opt:       &nn.Adam{LR: 0.002},
			Loss:      nn.SoftmaxCrossEntropy{},
			BatchSize: 64,
			Seed:      1,
		}
		start := time.Now()
		hist, err := tr.Fit(train.X, targets, 8)
		if err != nil {
			log.Fatal(err)
		}
		testAcc, err := tr.Evaluate(test.X, test.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s params=%-8d final-loss=%.4f test-acc=%.3f time=%v\n",
			c.name, c.net.NumParams(), hist.Last().MeanLoss, testAcc,
			time.Since(start).Round(time.Millisecond))
	}
}
