// Density atlas: explore the diversity of RadiX-Net topologies — the
// paper's central advantage over explicit X-Nets. This example sweeps a
// family of configurations, prints each one's exact density (eq. 4), the
// small-variance approximations (eq. 5–6), and its Theorem 1 path count,
// and demonstrates the eq. (5) claim that the dense shape {Di} barely moves
// density when radix variance is small.
//
// Run with:
//
//	go run ./examples/densityatlas
package main

import (
	"fmt"
	"log"

	radixnet "github.com/radix-net/radixnet"
)

func main() {
	log.SetFlags(0)

	fmt.Println("— topology diversity at fixed N′ = 64 —")
	fmt.Printf("%-34s %10s %10s %14s\n", "config", "density", "µ^-(d-1)", "paths/pair")
	for _, radices := range [][]int{
		{64},
		{8, 8},
		{4, 4, 4},
		{2, 2, 2, 2, 2, 2},
		{2, 32},
		{4, 16},
	} {
		sys := radixnet.MustSystem(radices...)
		cfg, err := radixnet.NewConfig([]radixnet.System{sys, sys}, nil)
		if err != nil {
			log.Fatal(err)
		}
		approx := radixnet.DensityApproxMuD(meanOf(radices), depthOf(cfg))
		fmt.Printf("%-34s %10.4g %10.4g %14v\n",
			cfg.String(), radixnet.Density(cfg), approx, radixnet.TheoreticalPaths(cfg))
	}

	fmt.Println("\n— eq. (5): the dense shape {Di} barely moves density (zero-variance radices) —")
	sys := radixnet.MustSystem(8, 8)
	for _, shape := range [][]int{nil, {1, 2, 1}, {4, 4, 4}, {1, 16, 1}} {
		cfg, err := radixnet.NewConfig([]radixnet.System{sys}, shape)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  D=%v density=%.6g widths=%v\n", shape, radixnet.Density(cfg), cfg.LayerWidths())
	}

	fmt.Println("\n— Fig. 7 cells along the diagonal µ = 2..10, d = 3 —")
	for _, c := range radixnet.DensityMap(2, 10, 3, 3) {
		fmt.Printf("  µ=%-3d N′=%-6d ΔG=%.6g (approx %.6g)\n", c.Mu, c.NPrime, c.Exact, c.Approx)
	}
}

func meanOf(radices []int) float64 {
	sum := 0
	for _, r := range radices {
		sum += r
	}
	return float64(sum) / float64(len(radices))
}

func depthOf(cfg radixnet.Config) float64 { return cfg.Depth() }
